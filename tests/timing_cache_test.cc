/**
 * @file
 * Tests for the layer-timing memoization cache: replay parity (a
 * warm-cache run must reproduce a live run's registry JSON byte for
 * byte, across every registered protection backend) and the
 * invalidation contract (an armed fault injector or an attached
 * tracer forces live execution; a warm cache never leaks into such
 * runs).
 *
 * A cache miss runs the op live and additionally records it; the
 * recording is observation-only (delta capture around the stats
 * tree). A cold-cache run is therefore the same execution a
 * cache-off (`SNPU_TIMING_CACHE=0`) run performs — the env-level A/B
 * lives in CI on the serve_throughput bench — so comparing a
 * cold-cache run against a warm-cache run exercises exactly the
 * replay machinery the cache-on/cache-off contract depends on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/systems.hh"
#include "core/task_runner.hh"
#include "core/timing_cache.hh"
#include "serve/core_scheduler.hh"
#include "sim/fault_injector.hh"
#include "sim/trace.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(ModelId id, int priority)
{
    NpuTask task =
        NpuTask::fromModel(id, World::normal, priority);
    task.model = task.model.scaled(64);
    return task;
}

std::vector<ExecStream>
parityStreams()
{
    // Two tiles' worth of repeated work: the same segments execute
    // many times, so a warm second run replays almost everything.
    const ModelId models[] = {ModelId::mobilenet, ModelId::yololite,
                              ModelId::resnet};
    std::vector<ExecStream> streams;
    for (std::uint32_t s = 0; s < 3; ++s) {
        ExecStream stream;
        stream.task = smallTask(models[s], static_cast<int>(s));
        stream.arrivals = {static_cast<Tick>(s) * 30000,
                           static_cast<Tick>(s) * 30000 + 300000};
        streams.push_back(stream);
    }
    return streams;
}

struct RunDump
{
    std::string registry_json;
    Tick makespan = 0;
};

/** The system kind that natively carries @p backend. */
SystemKind
kindFor(const std::string &backend)
{
    if (backend == "guarder")
        return SystemKind::snpu;
    if (backend == "iommu")
        return SystemKind::trustzone_npu;
    return SystemKind::normal_npu;
}

RunDump
runOnce(const std::string &backend, SchedPolicy policy)
{
    SystemOverrides o;
    o.protection = backend;
    o.model_scale = 64;
    auto soc = buildSoc(kindFor(backend), o);
    NCoreScheduler sched(*soc, policy, 2);
    NSchedResult res = sched.run(parityStreams());
    EXPECT_TRUE(res.ok()) << res.error();
    RunDump dump;
    std::ostringstream os;
    soc->registry().dumpJson(os);
    dump.registry_json = os.str();
    dump.makespan = res.makespan;
    return dump;
}

/**
 * Cache-off vs cache-on registry parity across every registered
 * protection backend, through the TaskRunner opt-in (the only
 * execution front end every backend supports). Three fresh SoCs run
 * the same task: live with the cache off, live-and-record (miss),
 * and replayed (hit). All three must leave the registry — every
 * stat under the SoC root — byte-identical.
 */
TEST(TimingCache, CacheOffMissAndHitRegistryJsonAgreePerBackend)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    for (const char *backend :
         {"passthrough", "iommu", "guarder", "crypto"}) {
        TimingCache &cache = TimingCache::global();
        cache.clear();

        auto one = [&](bool use_cache) {
            SystemOverrides o;
            o.protection = backend;
            o.model_scale = 64;
            auto soc = buildSoc(kindFor(backend), o);
            TaskRunner runner(*soc);
            NpuTask task = NpuTask::fromModel(ModelId::mobilenet);
            task.model = task.model.scaled(64);
            RunOptions opts;
            opts.use_timing_cache = use_cache;
            RunResult res = runner.run(task, opts);
            EXPECT_TRUE(res.ok()) << backend << ": " << res.error();
            std::ostringstream os;
            soc->registry().dumpJson(os);
            return std::make_pair(res.cycles, os.str());
        };

        const auto off = one(false);
        const auto miss = one(true);
        const std::uint64_t hits_before = cache.hits();
        const auto hit = one(true);
        EXPECT_GT(cache.hits(), hits_before)
            << backend << ": third run never hit the cache";

        EXPECT_EQ(off.first, miss.first) << backend;
        EXPECT_EQ(off.second, miss.second) << backend;
        EXPECT_EQ(miss.first, hit.first) << backend;
        EXPECT_EQ(miss.second, hit.second) << backend;
    }
}

/**
 * Replay parity on the serving scheduler for every backend the
 * serving path supports: a run that replays from a warm cache must
 * reproduce the live run's registry JSON byte for byte and report
 * the identical makespan. (The TrustZone IOMMU strawman is not
 * serving-capable — it has no per-stream VA provisioning — so it is
 * covered by the TaskRunner leg above instead.)
 */
TEST(TimingCache, WarmReplayMatchesLiveRegistryJsonPerBackend)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    for (const char *backend : {"passthrough", "guarder", "crypto"}) {
        TimingCache &cache = TimingCache::global();
        cache.clear();

        const RunDump live = runOnce(backend, SchedPolicy::id_based);
        const std::uint64_t hits_before = cache.hits();

        const RunDump warm = runOnce(backend, SchedPolicy::id_based);
        EXPECT_GT(cache.hits(), hits_before)
            << backend << ": warm run never hit the cache";

        EXPECT_EQ(live.makespan, warm.makespan) << backend;
        EXPECT_EQ(live.registry_json, warm.registry_json) << backend;
    }
}

/**
 * The context-switch flush path is memoized too: flushing policies
 * must satisfy the same parity contract as id-based isolation.
 */
TEST(TimingCache, FlushPolicyReplayParity)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    for (SchedPolicy policy :
         {SchedPolicy::flush_fine, SchedPolicy::flush_coarse}) {
        TimingCache::global().clear();
        const RunDump live = runOnce("guarder", policy);
        const RunDump warm = runOnce("guarder", policy);
        EXPECT_EQ(live.makespan, warm.makespan);
        EXPECT_EQ(live.registry_json, warm.registry_json);
    }
}

/**
 * An armed fault injector must force live execution: injected
 * faults have to land on a real run, and a warm cache must not leak
 * replayed timing into a faulted experiment.
 */
TEST(TimingCache, ArmedFaultInjectorBypassesTheCache)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    TimingCache &cache = TimingCache::global();
    cache.clear();

    // Warm the cache so a leak would have entries to replay.
    runOnce("guarder", SchedPolicy::id_based);

    const std::uint64_t hits0 = cache.hits();
    const std::uint64_t bypass0 = cache.bypasses();

    SystemOverrides o;
    o.protection = "guarder";
    o.model_scale = 64;
    auto soc = buildSoc(SystemKind::snpu, o);
    FaultInjector inj; // armed presence is what matters
    soc->armFaults(&inj);
    NCoreScheduler sched(*soc, SchedPolicy::id_based, 2);
    NSchedResult res = sched.run(parityStreams());
    ASSERT_TRUE(res.ok()) << res.error();

    EXPECT_GT(cache.bypasses(), bypass0);
    EXPECT_EQ(cache.hits(), hits0)
        << "a faulted run consulted the cache";
}

/** An attached tracer bypasses too: records cannot be replayed. */
TEST(TimingCache, AttachedTracerBypassesTheCache)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    TimingCache &cache = TimingCache::global();
    cache.clear();
    runOnce("guarder", SchedPolicy::id_based);

    const std::uint64_t hits0 = cache.hits();
    const std::uint64_t bypass0 = cache.bypasses();

    SystemOverrides o;
    o.protection = "guarder";
    o.model_scale = 64;
    auto soc = buildSoc(SystemKind::snpu, o);
    MemoryTraceSink sink;
    soc->attachTrace(&sink);
    NCoreScheduler sched(*soc, SchedPolicy::id_based, 2);
    NSchedResult res = sched.run(parityStreams());
    ASSERT_TRUE(res.ok()) << res.error();

    EXPECT_GT(cache.bypasses(), bypass0);
    EXPECT_EQ(cache.hits(), hits0)
        << "a traced run consulted the cache";
    EXPECT_FALSE(sink.records.empty());
}

/**
 * Faulted results are independent of the cache's warmth: the same
 * fault plan produces the same outcome whether the global cache is
 * cold or warmed by unfaulted runs — the bypass is total, not
 * partial.
 */
TEST(TimingCache, FaultedRunsUnchangedByCacheWarmth)
{
    auto faulted = [] {
        SystemOverrides o;
        o.protection = "guarder";
        o.model_scale = 64;
        auto soc = buildSoc(SystemKind::snpu, o);
        FaultPlan plan;
        plan.seed = 13;
        FaultInjector inj(plan);
        soc->armFaults(&inj);
        NCoreScheduler sched(*soc, SchedPolicy::id_based, 2);
        NSchedResult res = sched.run(parityStreams());
        EXPECT_TRUE(res.ok()) << res.error();
        std::ostringstream os;
        soc->registry().dumpJson(os);
        return std::make_pair(res.makespan, os.str());
    };

    TimingCache::global().clear();
    const auto cold = faulted();

    runOnce("guarder", SchedPolicy::id_based); // warm the cache
    const auto warm = faulted();

    EXPECT_EQ(cold.first, warm.first);
    EXPECT_EQ(cold.second, warm.second);
}

} // namespace
} // namespace snpu
