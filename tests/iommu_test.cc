/**
 * @file
 * Unit tests for the IOMMU baseline: page table walks, IOTLB
 * behaviour, and the TrustZone S/NS extension.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hh"
#include "iommu/iotlb.hh"
#include "iommu/page_table.hh"
#include "mem/mem_system.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct IommuFixture : ::testing::Test
{
    IommuFixture()
        : stats("g"), mem(stats),
          table(mem, AddrRange{mem.map().dram().base, 8u << 20})
    {
        data_base = mem.map().dram().base + (64u << 20);
    }

    Iommu
    makeIommu(std::uint32_t entries)
    {
        return makeIommu(stats, entries);
    }

    Iommu
    makeIommu(stats::Group &group, std::uint32_t entries)
    {
        IommuParams p;
        p.iotlb_entries = entries;
        return Iommu(group, table, p);
    }

    stats::Group stats;
    MemSystem mem;
    PageTable table;
    Addr data_base = 0;
};

TEST_F(IommuFixture, MapLookupRoundTrip)
{
    ASSERT_TRUE(table.map(0x10000, data_base, true, false));
    Pte pte = table.lookup(0x10234);
    EXPECT_TRUE(pte.valid);
    EXPECT_EQ(pte.paddr, data_base + 0x234);
    EXPECT_TRUE(pte.writable);
    EXPECT_FALSE(pte.secure);
}

TEST_F(IommuFixture, UnmappedLookupInvalid)
{
    EXPECT_FALSE(table.lookup(0xdead0000).valid);
}

TEST_F(IommuFixture, RemapConflictRejected)
{
    ASSERT_TRUE(table.map(0x20000, data_base, true, false));
    EXPECT_FALSE(table.map(0x20000, data_base + 0x1000, true, false));
}

TEST_F(IommuFixture, UnmapRemovesTranslation)
{
    ASSERT_TRUE(table.map(0x30000, data_base, true, false));
    EXPECT_TRUE(table.unmap(0x30000));
    EXPECT_FALSE(table.lookup(0x30000).valid);
    EXPECT_FALSE(table.unmap(0x30000));
}

TEST_F(IommuFixture, MapRangeCoversEveryPage)
{
    ASSERT_TRUE(table.mapRange(0x100000, data_base, 5 * page_bytes,
                               true, false));
    for (Addr off = 0; off < 5 * page_bytes; off += page_bytes) {
        EXPECT_TRUE(table.lookup(0x100000 + off).valid);
        EXPECT_EQ(table.lookup(0x100000 + off).paddr,
                  data_base + off);
    }
}

TEST_F(IommuFixture, TimedWalkCostsMemoryAccesses)
{
    ASSERT_TRUE(table.map(0x40000, data_base, true, false));
    Pte pte;
    const Tick done = table.walk(1000, 0x40000, pte);
    EXPECT_TRUE(pte.valid);
    // Three dependent reads: strictly positive, at least 3 L2 hits.
    EXPECT_GE(done - 1000, 3 * 20u);
}

TEST_F(IommuFixture, TranslateHitIsFast)
{
    ASSERT_TRUE(table.map(0x50000, data_base, true, false));
    Iommu iommu = makeIommu(8);
    // First access walks...
    Translation t1 = iommu.translate(0, 0x50040, 64, MemOp::read,
                                     World::normal);
    EXPECT_TRUE(t1.ok);
    EXPECT_EQ(t1.paddr, data_base + 0x40);
    EXPECT_EQ(iommu.walks(), 1u);
    // ...the second hits in one cycle.
    Translation t2 = iommu.translate(t1.ready, 0x50080, 64,
                                     MemOp::read, World::normal);
    EXPECT_TRUE(t2.ok);
    EXPECT_EQ(t2.ready - t1.ready, 1u);
    EXPECT_EQ(iommu.walks(), 1u);
}

TEST_F(IommuFixture, UnmappedTranslationDenied)
{
    Iommu iommu = makeIommu(8);
    Translation t = iommu.translate(0, 0xbad000, 64, MemOp::read,
                                    World::normal);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(iommu.denyCount(), 1u);
}

TEST_F(IommuFixture, WriteToReadOnlyPageDenied)
{
    ASSERT_TRUE(table.map(0x60000, data_base, false, false));
    Iommu iommu = makeIommu(8);
    EXPECT_TRUE(iommu.translate(0, 0x60000, 64, MemOp::read,
                                World::normal)
                    .ok);
    EXPECT_FALSE(iommu.translate(0, 0x60000, 64, MemOp::write,
                                 World::normal)
                     .ok);
}

TEST_F(IommuFixture, SecurePageDeniedToNormalWorld)
{
    ASSERT_TRUE(table.map(0x70000, data_base, true, true));
    Iommu iommu = makeIommu(8);
    EXPECT_FALSE(iommu.translate(0, 0x70000, 64, MemOp::read,
                                 World::normal)
                     .ok);
    EXPECT_TRUE(iommu.translate(0, 0x70000, 64, MemOp::read,
                                World::secure)
                    .ok);
}

TEST_F(IommuFixture, FlushTlbForcesRewalk)
{
    ASSERT_TRUE(table.map(0x80000, data_base, true, false));
    Iommu iommu = makeIommu(8);
    iommu.translate(0, 0x80000, 64, MemOp::read, World::normal);
    iommu.flushTlb();
    iommu.translate(1000, 0x80000, 64, MemOp::read, World::normal);
    EXPECT_EQ(iommu.walks(), 2u);
}

TEST_F(IommuFixture, SmallTlbThrashesAcrossStreams)
{
    // Map 8 pages; access them round-robin with a 4-entry TLB: every
    // access after warm-up still misses (LRU worst case).
    for (int p = 0; p < 8; ++p) {
        ASSERT_TRUE(table.map(0x100000 + p * page_bytes,
                              data_base + p * page_bytes, true,
                              false));
    }
    Iommu small = makeIommu(4);
    Tick t = 0;
    for (int round = 0; round < 4; ++round) {
        for (int p = 0; p < 8; ++p) {
            Translation tr = small.translate(
                t, 0x100000 + p * page_bytes, 64, MemOp::read,
                World::normal);
            t = tr.ready;
        }
    }
    EXPECT_EQ(small.walks(), 32u); // every single access walked

    stats::Group big_stats("g_big");
    Iommu big = makeIommu(big_stats, 16);
    t = 0;
    for (int round = 0; round < 4; ++round) {
        for (int p = 0; p < 8; ++p) {
            Translation tr = big.translate(
                t, 0x100000 + p * page_bytes, 64, MemOp::read,
                World::normal);
            t = tr.ready;
        }
    }
    EXPECT_EQ(big.walks(), 8u); // one compulsory miss per page
}

TEST(Iotlb, LruReplacement)
{
    Iotlb tlb(2);
    tlb.insert(1, 101, true, false);
    tlb.insert(2, 102, true, false);
    EXPECT_NE(tlb.lookup(1), nullptr); // 2 becomes LRU
    tlb.insert(3, 103, true, false);   // evicts 2
    EXPECT_NE(tlb.lookup(1), nullptr);
    EXPECT_EQ(tlb.lookup(2), nullptr);
    EXPECT_NE(tlb.lookup(3), nullptr);
    EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(Iotlb, InsertRefreshesExistingEntry)
{
    Iotlb tlb(2);
    tlb.insert(1, 101, true, false);
    tlb.insert(1, 201, false, true);
    const IotlbEntry *e = tlb.lookup(1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppn, 201u);
    EXPECT_TRUE(e->secure);
    EXPECT_EQ(tlb.evictions(), 0u);
}

TEST(Iotlb, FlushPage)
{
    Iotlb tlb(4);
    tlb.insert(1, 101, true, false);
    tlb.insert(2, 102, true, false);
    tlb.flushPage(1);
    EXPECT_EQ(tlb.lookup(1), nullptr);
    EXPECT_NE(tlb.lookup(2), nullptr);
}

TEST(Iotlb, ZeroEntriesIsFatal)
{
    EXPECT_THROW(Iotlb(0), FatalError);
}

TEST(Pte, EncodeDecodeRoundTrip)
{
    Pte pte;
    pte.valid = true;
    pte.writable = true;
    pte.secure = true;
    pte.paddr = 0x8765'4000;
    const Pte back = Pte::decode(pte.encode());
    EXPECT_TRUE(back.valid);
    EXPECT_TRUE(back.writable);
    EXPECT_TRUE(back.secure);
    EXPECT_EQ(back.paddr, 0x8765'4000u);
}

} // namespace
} // namespace snpu
