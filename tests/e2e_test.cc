/**
 * @file
 * End-to-end integration tests: the full monitor launch pipeline
 * driving real execution, and concurrent secure/normal tenants on
 * separate tiles with the isolation counters checked afterwards.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/soc.hh"
#include "core/task_runner.hh"
#include "tee/monitor/npu_monitor.hh"

namespace snpu
{
namespace
{

TEST(EndToEnd, MonitorLaunchedProgramExecutes)
{
    SocParams params = makeSystem(SystemKind::snpu);
    params.timing_only = false; // full functional data path
    Soc soc(params);
    TaskRunner runner(soc);

    // The user's workload, compiled for the secure world.
    NpuTask task = NpuTask::fromModel(ModelId::yololite, World::secure);
    task.model = task.model.scaled(32);

    SecureTask secure;
    secure.program = runner.compile(task);
    secure.expected_measurement = CodeVerifier::measure(secure.program);
    secure.topology = NocTopology{1, 1};
    secure.proposed_cores = {2};

    std::vector<std::uint8_t> model(1024, 0x42);
    AesBlock iv{};
    Digest mac{};
    secure.encrypted_model =
        soc.monitor().verifier().encryptModel(model, iv, mac);
    secure.model_mac = mac;
    secure.model_iv = iv;

    ASSERT_NE(soc.monitor().submit(secure), 0u);
    LaunchResult launch = soc.monitor().launchNext();
    ASSERT_TRUE(launch.ok()) << launch.reason();
    ASSERT_EQ(launch.cores[0], 2u);
    EXPECT_EQ(soc.npu().core(2).idState(), World::secure);

    // Execute the *monitor-wrapped* loadable program: its prologue
    // sets the ID state, the user code runs, the epilogue scrubs.
    RunOptions opts;
    opts.core = 2;
    RunResult run = runner.run(task, opts);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_GT(run.cycles, 0u);
    EXPECT_GT(run.macs, 0u);

    // Wrapped program itself also runs cleanly (prologue/epilogue).
    ExecResult wrapped =
        soc.npu().core(2).run(run.end, launch.loadable[0]);
    EXPECT_TRUE(wrapped.ok()) << wrapped.error();

    // Teardown releases the core and scrubs the scratchpad.
    ASSERT_TRUE(soc.monitor().finish(launch.task_id));
    EXPECT_EQ(soc.npu().core(2).idState(), World::normal);
    for (std::uint32_t row = 0; row < 64; ++row)
        EXPECT_EQ(soc.npu().core(2).scratchpad().idState(row),
                  World::normal);
}

TEST(EndToEnd, ConcurrentWorldsStayIsolated)
{
    Soc soc(makeSystem(SystemKind::snpu));
    TaskRunner runner(soc);

    // Secure tenant on tile 0, normal tenant on tile 1; both full
    // workloads through the same shared memory system.
    NpuTask secure_task =
        NpuTask::fromModel(ModelId::mobilenet, World::secure);
    secure_task.model = secure_task.model.scaled(16);
    NpuTask normal_task =
        NpuTask::fromModel(ModelId::yololite, World::normal);
    normal_task.model = normal_task.model.scaled(16);

    RunOptions secure_opts;
    secure_opts.core = 0;
    RunResult secure_res = runner.run(secure_task, secure_opts);
    ASSERT_TRUE(secure_res.ok()) << secure_res.error();

    RunOptions normal_opts;
    normal_opts.core = 1;
    RunResult normal_res = runner.run(normal_task, normal_opts);
    ASSERT_TRUE(normal_res.ok()) << normal_res.error();

    // Neither run tripped a violation, and the memory partition saw
    // no rejected accesses.
    EXPECT_EQ(secure_res.error(), "");
    EXPECT_EQ(soc.mem().partitionViolations(), 0u);

    // The normal tenant cannot read the secure tenant's scratchpad.
    Scratchpad &spad0 = soc.npu().core(0).scratchpad();
    int readable = 0;
    for (std::uint32_t row = 0; row < 128; ++row) {
        if (spad0.read(World::normal, row, nullptr) == SpadStatus::ok)
            ++readable;
    }
    EXPECT_EQ(readable, 0) << "normal world read secure rows";
}

TEST(EndToEnd, GuarderWindowsSurviveRealWorkload)
{
    // After a full run, the guarder's denial counter is still zero:
    // the compiler's every access stayed within the provisioned
    // windows (a compiler/provisioning consistency check).
    Soc soc(makeSystem(SystemKind::snpu));
    TaskRunner runner(soc);
    NpuTask task = NpuTask::fromModel(ModelId::googlenet);
    task.model = task.model.scaled(8);
    RunResult res = runner.run(task);
    ASSERT_TRUE(res.ok()) << res.error();
    NpuGuarder *g = soc.protection(0).asGuarder();
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->denyCount(), 0u);
    EXPECT_GT(g->checkCount(), 0u);
}

TEST(EndToEnd, TrustzoneIommuMapsSurviveRealWorkload)
{
    Soc soc(makeSystem(SystemKind::trustzone_npu));
    TaskRunner runner(soc);
    NpuTask task = NpuTask::fromModel(ModelId::mobilenet);
    task.model = task.model.scaled(8);
    RunResult res = runner.run(task);
    ASSERT_TRUE(res.ok()) << res.error();
    Iommu *iommu = soc.protection(0).asIommu();
    ASSERT_NE(iommu, nullptr);
    EXPECT_EQ(iommu->denyCount(), 0u);
    EXPECT_GT(iommu->walks(), 0u);
    EXPECT_GT(iommu->tlb().hits(), iommu->walks());
}

TEST(EndToEnd, StatsDumpContainsAllSubsystems)
{
    Soc soc(makeSystem(SystemKind::snpu));
    TaskRunner runner(soc);
    NpuTask task = NpuTask::fromModel(ModelId::yololite);
    task.model = task.model.scaled(32);
    ASSERT_TRUE(runner.run(task).ok());

    std::ostringstream os;
    soc.stats().dump(os);
    const std::string dump = os.str();
    for (const char *needle :
         {"dram_bytes", "l2_hits", "dma_packets", "protection0.checks",
          "spad_reads", "noc_packets", "npu_instructions"}) {
        EXPECT_NE(dump.find(needle), std::string::npos)
            << "missing stat " << needle;
    }
}

} // namespace
} // namespace snpu
