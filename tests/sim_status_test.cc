/**
 * @file
 * Tests for the Status vocabulary: every code has a distinct printed
 * name, every factory maps to its code, and toString() preserves the
 * message — the serving recovery layer routes on these codes, so the
 * whole enum is pinned here.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/status.hh"

namespace snpu
{
namespace
{

TEST(Status, EveryCodeHasAUniqueName)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < status_code_count; ++i) {
        const char *name =
            statusCodeName(static_cast<StatusCode>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "code " << i;
        names.insert(name);
    }
    EXPECT_EQ(names.size(), status_code_count);
}

TEST(Status, ErrorFactoryRoundTripsEveryCode)
{
    for (std::size_t i = 1; i < status_code_count; ++i) {
        const auto code = static_cast<StatusCode>(i);
        const Status s = Status::error(code, "why");
        EXPECT_FALSE(s.isOk());
        EXPECT_EQ(s.code(), code);
        EXPECT_EQ(s.message(), "why");
        EXPECT_EQ(s.toString(),
                  std::string(statusCodeName(code)) + ": why");
    }
    // error(ok, ...) is a contradiction and degrades to internal.
    EXPECT_EQ(Status::error(StatusCode::ok, "x").code(),
              StatusCode::internal);
}

TEST(Status, NamedFactoriesMatchTheirCodes)
{
    const struct
    {
        Status status;
        StatusCode code;
    } cases[] = {
        {Status::invalidArgument("m"), StatusCode::invalid_argument},
        {Status::compileFailed("m"), StatusCode::compile_failed},
        {Status::provisionFailed("m"), StatusCode::provision_failed},
        {Status::privilegeDenied("m"), StatusCode::privilege_denied},
        {Status::verificationFailed("m"),
         StatusCode::verification_failed},
        {Status::resourceExhausted("m"),
         StatusCode::resource_exhausted},
        {Status::execFailed("m"), StatusCode::exec_failed},
        {Status::internal("m"), StatusCode::internal},
        {Status::timeout("m"), StatusCode::timeout},
        {Status::faultInjected("m"), StatusCode::fault_injected},
        {Status::degraded("m"), StatusCode::degraded},
    };
    // One named factory per non-ok code, none forgotten.
    ASSERT_EQ(std::size(cases) + 1, status_code_count);
    std::set<StatusCode> seen;
    for (const auto &c : cases) {
        EXPECT_EQ(c.status.code(), c.code);
        EXPECT_EQ(c.status.message(), "m");
        seen.insert(c.code);
    }
    EXPECT_EQ(seen.size(), std::size(cases));
}

TEST(Status, OkIsOk)
{
    const Status s = Status::ok();
    EXPECT_TRUE(s.isOk());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::ok);
    EXPECT_EQ(s.toString(), "ok");
}

} // namespace
} // namespace snpu
