/**
 * @file
 * Tests for the §VII extensions: multiple hardware secure domains,
 * software-defined domains inside the monitor, and the TNPU-style
 * memory encryption engine that sNPU complements.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/area_model.hh"
#include "core/systems.hh"
#include "mem/mem_crypto.hh"
#include "mem/mem_system.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "spad/multi_domain.hh"
#include "tee/monitor/soft_domains.hh"

namespace snpu
{
namespace
{

MultiDomainParams
smallMd(SpadScope scope, std::uint32_t domains)
{
    MultiDomainParams p;
    p.rows = 64;
    p.row_bytes = 16;
    p.scope = scope;
    p.domains = domains;
    return p;
}

TEST(MultiDomainSpad, TagBits)
{
    stats::Group stats("g");
    EXPECT_EQ(MultiDomainScratchpad(stats, smallMd(SpadScope::local, 2))
                  .tagBits(),
              1u);
    EXPECT_EQ(MultiDomainScratchpad(stats, smallMd(SpadScope::local, 4))
                  .tagBits(),
              2u);
    EXPECT_EQ(
        MultiDomainScratchpad(stats, smallMd(SpadScope::local, 16))
            .tagBits(),
        4u);
}

TEST(MultiDomainSpad, NonPowerOfTwoIsFatal)
{
    stats::Group stats("g");
    EXPECT_THROW(
        MultiDomainScratchpad(stats, smallMd(SpadScope::local, 3)),
        FatalError);
    EXPECT_THROW(
        MultiDomainScratchpad(stats, smallMd(SpadScope::local, 1)),
        FatalError);
}

TEST(MultiDomainSpad, DomainsAreMutuallyIsolated)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::local, 4));
    std::uint8_t row[16] = {0x11};
    ASSERT_EQ(spad.write(1, 0, row), SpadStatus::ok);

    // Domains 2, 3 and the normal world all get denied; domain 1
    // reads its own data back.
    for (DomainId d : {DomainId(0), DomainId(2), DomainId(3)}) {
        EXPECT_EQ(spad.read(d, 0, nullptr),
                  SpadStatus::security_violation)
            << "domain " << int(d);
    }
    std::uint8_t out[16];
    EXPECT_EQ(spad.read(1, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x11);
}

TEST(MultiDomainSpad, ForcedWriteRetagsOnLocal)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::local, 4));
    std::uint8_t secret[16] = {0x5e};
    spad.write(2, 5, secret);
    std::uint8_t junk[16] = {0x00};
    EXPECT_EQ(spad.write(3, 5, junk), SpadStatus::ok);
    EXPECT_EQ(spad.tag(5), 3);
    std::uint8_t out[16];
    EXPECT_EQ(spad.read(3, 5, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x00);
}

TEST(MultiDomainSpad, SharedScopeForbidsForcedCrossDomainWrite)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::global, 4));
    std::uint8_t row[16] = {1};
    spad.write(1, 0, row);
    EXPECT_EQ(spad.write(2, 0, row), SpadStatus::security_violation);
    EXPECT_EQ(spad.write(0, 0, row), SpadStatus::security_violation);
    // Domain 1 keeps access.
    EXPECT_EQ(spad.write(1, 0, row), SpadStatus::ok);
}

TEST(MultiDomainSpad, SecureAccessClaimsUntaggedSharedLine)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::global, 8));
    EXPECT_EQ(spad.tag(3), 0);
    EXPECT_EQ(spad.read(5, 3, nullptr), SpadStatus::ok);
    EXPECT_EQ(spad.tag(3), 5);
}

TEST(MultiDomainSpad, ResetDomainScrubsOnlyThatDomain)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::local, 4));
    std::uint8_t a[16] = {0xaa};
    std::uint8_t b[16] = {0xbb};
    spad.write(1, 0, a);
    spad.write(2, 1, b);

    EXPECT_FALSE(spad.resetDomain(1, false)); // needs privilege
    EXPECT_FALSE(spad.resetDomain(0, true));  // domain 0 not resettable
    EXPECT_TRUE(spad.resetDomain(1, true));

    EXPECT_EQ(spad.tag(0), 0);
    EXPECT_EQ(spad.tag(1), 2); // untouched
    std::uint8_t out[16];
    EXPECT_EQ(spad.read(0, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(spad.read(2, 1, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0xbb);
}

TEST(MultiDomainSpad, InvalidDomainRejected)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::local, 4));
    EXPECT_EQ(spad.write(4, 0, nullptr),
              SpadStatus::security_violation);
    EXPECT_EQ(spad.read(9, 0, nullptr),
              SpadStatus::security_violation);
}

/** Property: no domain ever reads another domain's bytes. */
class MultiDomainProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultiDomainProperty, NoCrossDomainLeak)
{
    stats::Group stats("g");
    MultiDomainScratchpad spad(stats, smallMd(SpadScope::local, 8));
    Rng rng(GetParam());
    std::vector<DomainId> owner(64, 0);

    for (int op = 0; op < 5000; ++op) {
        const auto row = static_cast<std::uint32_t>(rng.below(64));
        const auto d = static_cast<DomainId>(rng.below(8));
        std::uint8_t buf[16];
        if (rng.chance(0.5)) {
            std::memset(buf, 0x10 + d, sizeof(buf));
            if (spad.write(d, row, buf) == SpadStatus::ok)
                owner[row] = d;
        } else {
            if (spad.read(d, row, buf) == SpadStatus::ok) {
                EXPECT_EQ(owner[row], d);
                EXPECT_EQ(buf[0], owner[row] ? 0x10 + owner[row]
                                             : buf[0]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiDomainProperty,
                         ::testing::Values(3, 17, 1234));

TEST(SoftDomains, RegisterAndCheck)
{
    stats::Group stats("g");
    SoftDomainTable table(stats);
    SoftDomain d1;
    d1.task_id = 1;
    d1.spad_rows[0] = {0, 100};
    d1.windows.push_back(AddrRange{0x1000, 0x1000});
    ASSERT_TRUE(table.registerDomain(d1));

    EXPECT_TRUE(table.checkSpad(1, 0, 50));
    EXPECT_FALSE(table.checkSpad(1, 0, 100));
    EXPECT_FALSE(table.checkSpad(1, 1, 50)); // no grant on core 1
    EXPECT_TRUE(table.checkMemory(1, 0x1800, 64));
    EXPECT_FALSE(table.checkMemory(1, 0x2000, 64));
    EXPECT_FALSE(table.checkMemory(2, 0x1800, 64)); // unknown task
    EXPECT_GT(table.checksPerformed(), 0u);
    EXPECT_GT(table.denialCount(), 0u);
}

TEST(SoftDomains, OverlappingGrantsRejected)
{
    stats::Group stats("g");
    SoftDomainTable table(stats);
    SoftDomain d1;
    d1.task_id = 1;
    d1.spad_rows[0] = {0, 100};
    d1.windows.push_back(AddrRange{0x1000, 0x1000});
    ASSERT_TRUE(table.registerDomain(d1));

    SoftDomain d2;
    d2.task_id = 2;
    d2.spad_rows[0] = {50, 100}; // overlaps d1 on core 0
    EXPECT_FALSE(table.registerDomain(d2));
    d2.spad_rows[0] = {100, 100};
    d2.windows.push_back(AddrRange{0x1800, 0x100}); // overlaps window
    EXPECT_FALSE(table.registerDomain(d2));
    d2.windows.clear();
    d2.windows.push_back(AddrRange{0x3000, 0x100});
    EXPECT_TRUE(table.registerDomain(d2));

    // Unregister frees the grants for reuse.
    EXPECT_TRUE(table.unregisterDomain(1));
    SoftDomain d3;
    d3.task_id = 3;
    d3.spad_rows[0] = {0, 100};
    EXPECT_TRUE(table.registerDomain(d3));
    EXPECT_FALSE(table.unregisterDomain(99));
}

TEST(SoftDomains, DuplicateOrZeroIdRejected)
{
    stats::Group stats("g");
    SoftDomainTable table(stats);
    SoftDomain d;
    d.task_id = 0;
    EXPECT_FALSE(table.registerDomain(d));
    d.task_id = 7;
    EXPECT_TRUE(table.registerDomain(d));
    EXPECT_FALSE(table.registerDomain(d));
}

TEST(MemCrypto, DisabledIsFree)
{
    stats::Group stats("g");
    MemCryptoEngine engine(stats);
    EXPECT_EQ(engine.accessPenalty(0x1000), 0u);
    EXPECT_FALSE(engine.enabled());
}

TEST(MemCrypto, CounterCacheHitsAndMisses)
{
    stats::Group stats("g");
    MemCryptoParams p;
    p.enabled = true;
    p.counter_cache_entries = 2;
    MemCryptoEngine engine(stats, p);

    // First touch of a page: miss; second: hit.
    const Tick miss = engine.accessPenalty(0x10000);
    const Tick hit = engine.accessPenalty(0x10040);
    EXPECT_EQ(miss, p.engine_latency + p.counter_miss_penalty);
    EXPECT_EQ(hit, p.engine_latency);

    // Thrash the 2-entry cache with three pages.
    engine.accessPenalty(0x20000);
    engine.accessPenalty(0x30000); // evicts 0x10000's page (LRU)
    EXPECT_EQ(engine.accessPenalty(0x10000),
              p.engine_latency + p.counter_miss_penalty);
    EXPECT_GE(engine.counterMisses(), 4u);
}

TEST(MemCrypto, EndToEndOverheadIsModest)
{
    SystemOverrides plain;
    plain.model_scale = 8;
    SystemOverrides enc = plain;
    enc.memory_encryption = true;

    RunResult base = measureModel(SystemKind::snpu, ModelId::resnet,
                                  plain);
    RunResult with = measureModel(SystemKind::snpu, ModelId::resnet,
                                  enc);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(with.ok());
    EXPECT_GT(with.cycles, base.cycles);
    // TNPU-class engines stay in single-digit percentages.
    EXPECT_LT(static_cast<double>(with.cycles),
              1.15 * static_cast<double>(base.cycles));
}

TEST(AreaModelExtension, TagBitsScaleWithDomains)
{
    AreaModel model(makeSystem(SystemKind::snpu));
    const Resources d2 = model.sSpadMultiDomain(2);
    const Resources d4 = model.sSpadMultiDomain(4);
    const Resources d16 = model.sSpadMultiDomain(16);
    EXPECT_DOUBLE_EQ(d2.ram_bits, model.sSpad().ram_bits);
    EXPECT_GT(d4.ram_bits, d2.ram_bits);
    EXPECT_GT(d16.ram_bits, d4.ram_bits);
    EXPECT_NEAR(d16.ram_bits, 4 * d2.ram_bits, 1.0);
    // Even 16 domains stay under ~3% of the tile's RAM bits.
    const Resources pct = model.baselineTile().percentOver(d16);
    EXPECT_LT(pct.ram_bits, 3.0);
}

} // namespace
} // namespace snpu
