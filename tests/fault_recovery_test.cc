/**
 * @file
 * End-to-end tests for fault injection on the serving path and the
 * recovery policy layered above it: terminal denials fail only the
 * faulted request, transient faults are retried to completion,
 * deadlines catch hangs, the circuit breaker quarantines a tenant
 * that keeps faulting without disturbing its neighbors, and an armed
 * but empty plan is indistinguishable from injection disabled.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "core/systems.hh"
#include "noc/mesh.hh"
#include "noc/router_controller.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/random.hh"
#include "spad/scratchpad.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(ModelId id, World world = World::normal, int priority = 0)
{
    NpuTask task = NpuTask::fromModel(id, world, priority);
    task.model = task.model.scaled(64);
    return task;
}

/** Two tenants: [0] secure mobilenet, [1] normal yololite. */
std::vector<TenantSpec>
makeTenants(std::uint32_t requests, std::uint32_t capacity,
            std::uint64_t seed)
{
    std::vector<TenantSpec> tenants;
    const ModelId models[] = {ModelId::mobilenet, ModelId::yololite};
    const World worlds[] = {World::secure, World::normal};
    for (std::uint32_t t = 0; t < 2; ++t) {
        TenantSpec spec;
        spec.name = std::string(modelName(models[t])) + "_" +
                    std::to_string(t);
        spec.task = smallTask(models[t], worlds[t]);
        spec.queue_capacity = capacity;
        Rng rng(seed + t);
        spec.arrivals = poissonArrivals(rng, 200000.0, requests);
        tenants.push_back(spec);
    }
    return tenants;
}

FaultSpec
oneShot(FaultSite site, std::uint64_t nth = 1)
{
    FaultSpec spec;
    spec.site = site;
    spec.trigger = FaultTrigger::nth;
    spec.nth = nth;
    return spec;
}

ServerConfig
recoveryConfig()
{
    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.fault_injection = true;
    cfg.max_retries = 2;
    cfg.retry_backoff = 500;
    return cfg;
}

struct Totals
{
    std::uint32_t completed = 0, failed = 0, retries = 0,
                  timeouts = 0, rejected = 0;
};

Totals
tally(const ServeResult &res)
{
    Totals t;
    for (const TenantReport &rep : res.tenants) {
        t.completed += rep.completed;
        t.failed += rep.failed;
        t.retries += rep.retries;
        t.timeouts += rep.timeouts;
        t.rejected += rep.rejected;
    }
    return t;
}

/**
 * A Guarder denial is terminal (retrying cannot change a permission
 * verdict): exactly the faulted request fails, everything else —
 * including the co-tenant sharing the tiles — completes.
 */
TEST(FaultRecovery, GuarderDenialFailsOnlyTheFaultedRequest)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    cfg.fault_plan.faults = {oneShot(FaultSite::guarder_check)};
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 8, 21));
    ASSERT_TRUE(res.ok()) << res.error();

    const Totals t = tally(res);
    EXPECT_EQ(t.failed, 1u);
    EXPECT_EQ(t.completed, 7u);
    EXPECT_EQ(t.retries, 0u); // privilege_denied is not retryable
    EXPECT_EQ(t.rejected, 0u);
    for (const TenantReport &rep : res.tenants)
        EXPECT_EQ(rep.completed + rep.failed, 4u) << rep.name;

    ASSERT_EQ(server.faultInjector()->fireCount(), 1u);
    EXPECT_EQ(server.faultInjector()->fired()[0].site,
              FaultSite::guarder_check);
    // Post-fault hygiene (scrub + window revoke) was charged.
    EXPECT_GT(res.recovery_overhead, 0u);
}

/**
 * A transient DMA transfer error is retryable: the retry budget
 * absorbs it and every request still completes.
 */
TEST(FaultRecovery, TransientDmaFaultIsRetriedToCompletion)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    cfg.fault_plan.faults = {oneShot(FaultSite::dma_transfer)};
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 8, 22));
    ASSERT_TRUE(res.ok()) << res.error();

    const Totals t = tally(res);
    EXPECT_EQ(t.completed, 8u);
    EXPECT_EQ(t.failed, 0u);
    EXPECT_GE(t.retries, 1u);
    EXPECT_GT(res.recovery_overhead, 0u);
    EXPECT_EQ(server.faultInjector()->fireCount(), 1u);
}

/**
 * A silent scratchpad bit flip surfaces as a degraded result at task
 * retirement (output integrity check), which is retryable: the rerun
 * on scrubbed rows completes clean.
 */
TEST(FaultRecovery, SilentCorruptionIsDetectedAndRetried)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    cfg.fault_plan.faults = {oneShot(FaultSite::spad_bit_flip)};
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 8, 23));
    ASSERT_TRUE(res.ok()) << res.error();

    const Totals t = tally(res);
    EXPECT_EQ(t.completed, 8u);
    EXPECT_EQ(t.failed, 0u);
    EXPECT_GE(t.retries, 1u);
    EXPECT_EQ(server.faultInjector()->fireCount(), 1u);
    EXPECT_EQ(server.faultInjector()->fired()[0].site,
              FaultSite::spad_bit_flip);
}

/**
 * A monitor verification fault can only hit a secure dispatch: the
 * secure tenant loses exactly one request to a terminal
 * verification_failed, the normal tenant never even probes the site.
 */
TEST(FaultRecovery, MonitorVerifyFaultHitsOnlySecureTenants)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    cfg.fault_plan.faults = {oneShot(FaultSite::monitor_verify)};
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 8, 24));
    ASSERT_TRUE(res.ok()) << res.error();

    const TenantReport &secure = res.tenants[0];
    const TenantReport &normal = res.tenants[1];
    EXPECT_EQ(secure.failed, 1u);
    EXPECT_EQ(secure.completed, 3u);
    EXPECT_EQ(secure.retries, 0u); // terminal
    EXPECT_EQ(normal.completed, 4u);
    EXPECT_EQ(normal.failed, 0u);
    EXPECT_EQ(normal.faults_observed, 0u);
}

/**
 * An injected hang trips the deadline watchdog: the request fails as
 * a timeout, the stalled tile's clock pays the full deadline, and
 * the rest of the window drains normally.
 */
TEST(FaultRecovery, HangTripsTheDeadlineWatchdog)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    cfg.fault_plan.faults = {oneShot(FaultSite::task_hang)};
    cfg.default_deadline = 3000000;
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 8, 25));
    ASSERT_TRUE(res.ok()) << res.error();

    const Totals t = tally(res);
    EXPECT_GE(t.timeouts, 1u);
    EXPECT_EQ(t.failed, t.timeouts);
    EXPECT_EQ(t.completed + t.failed, 8u);
    EXPECT_EQ(server.faultInjector()->fired()[0].site,
              FaultSite::task_hang);
    // The watchdog charges the hung tile up to the deadline.
    EXPECT_GE(res.makespan, cfg.default_deadline);
}

/**
 * Acceptance scenario for the circuit breaker: a secure tenant whose
 * every dispatch fails verification is quarantined after the
 * threshold, and the co-tenant's completions match a fault-free run
 * of the same mix bit for bit.
 */
TEST(FaultRecovery, QuarantineLeavesCoTenantsUnaffected)
{
    const std::uint64_t seed = 26;

    auto clean_soc = buildSoc(SystemKind::snpu);
    ServerConfig clean_cfg;
    clean_cfg.num_cores = 2;
    SnpuServer clean_server(*clean_soc, clean_cfg);
    ServeResult clean = clean_server.serve(makeTenants(6, 8, seed));
    ASSERT_TRUE(clean.ok()) << clean.error();
    ASSERT_EQ(clean.tenants[1].completed, 6u);

    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg = recoveryConfig();
    FaultSpec always = oneShot(FaultSite::monitor_verify);
    always.trigger = FaultTrigger::probability;
    always.probability = 1.0;
    always.max_fires = 0;
    cfg.fault_plan.faults = {always};
    cfg.quarantine_threshold = 3;
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(6, 8, seed));
    ASSERT_TRUE(res.ok()) << res.error();

    const TenantReport &secure = res.tenants[0];
    EXPECT_TRUE(secure.quarantined);
    EXPECT_EQ(secure.completed, 0u);
    EXPECT_GE(secure.failed, cfg.quarantine_threshold);
    EXPECT_GT(secure.rejected, 0u); // post-quarantine admissions
    EXPECT_EQ(secure.failed + secure.rejected, 6u);

    // The normal tenant completes exactly its fault-free schedule.
    const TenantReport &normal = res.tenants[1];
    EXPECT_FALSE(normal.quarantined);
    EXPECT_EQ(normal.completed, clean.tenants[1].completed);
    EXPECT_EQ(normal.failed, 0u);
    EXPECT_EQ(normal.rejected, 0u);
}

/**
 * Zero-overhead contract: arming the injector with an empty plan
 * must serve the identical schedule as injection disabled.
 */
TEST(FaultRecovery, ArmedEmptyPlanMatchesInjectionDisabled)
{
    std::vector<std::string> dumps;
    for (const bool armed : {false, true}) {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig cfg;
        cfg.num_cores = 2;
        cfg.fault_injection = armed;
        SnpuServer server(*soc, cfg);
        ServeResult res = server.serve(makeTenants(6, 8, 27));
        ASSERT_TRUE(res.ok()) << res.error();
        if (armed)
            EXPECT_EQ(server.faultInjector()->fireCount(), 0u);
        std::ostringstream os;
        os << res.makespan << " " << res.flush_overhead << " "
           << res.monitor_overhead << " " << res.recovery_overhead
           << "\n";
        for (const TenantReport &rep : res.tenants)
            os << rep.completed << " " << rep.failed << " "
               << rep.retries << " " << rep.p50 << " " << rep.p95
               << " " << rep.p99 << " " << rep.worst_latency << " "
               << rep.monitor_cycles << "\n";
        dumps.push_back(os.str());
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

/**
 * Admission drop path beyond the per-tenant queue: a burst of secure
 * arrivals larger than the monitor's SecureTaskQueue bounces the
 * overflow at admission without disturbing the co-tenant.
 */
TEST(FaultRecovery, MonitorQueueOverflowRejectsAtAdmission)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    SnpuServer server(*soc, cfg);

    // 70 simultaneous secure arrivals against a 128-deep tenant
    // queue: only the monitor queue (capacity 64) can say no.
    std::vector<TenantSpec> tenants = makeTenants(4, 8, 28);
    tenants[0].queue_capacity = 128;
    tenants[0].arrivals.assign(70, Tick{0});

    ServeResult res = server.serve(tenants);
    ASSERT_TRUE(res.ok()) << res.error();
    const TenantReport &secure = res.tenants[0];
    EXPECT_EQ(secure.rejected, 6u);
    EXPECT_EQ(secure.completed, 64u);
    EXPECT_EQ(secure.failed, 0u);
    EXPECT_EQ(res.tenants[1].completed, 4u);
    EXPECT_EQ(res.tenants[1].rejected, 0u);
}

// --- NoC fault sites (fabric level: the serving path has no ---------
// --- core-to-core transfers, so these are probed directly) ----------

struct NocFaultFixture : ::testing::Test
{
    NocFaultFixture()
        : stats("g"), mesh(stats),
          fabric(stats, mesh, NocMode::peephole)
    {
        SpadParams p;
        p.rows = 256;
        p.row_bytes = 16;
        p.mode = IsolationMode::id_based;
        for (std::uint32_t i = 0; i < mesh.nodes(); ++i) {
            spad_groups.push_back(std::make_unique<stats::Group>(
                stats, "spad" + std::to_string(i)));
            spads.push_back(std::make_unique<Scratchpad>(
                *spad_groups.back(), p));
            fabric.attachScratchpad(i, spads.back().get());
        }
        std::uint8_t buf[16];
        std::memset(buf, 0x42, sizeof(buf));
        EXPECT_EQ(spads[0]->write(World::normal, 0, buf),
                  SpadStatus::ok);
    }

    stats::Group stats;
    Mesh mesh;
    NocFabric fabric;
    std::vector<std::unique_ptr<stats::Group>> spad_groups;
    std::vector<std::unique_ptr<Scratchpad>> spads;
};

TEST_F(NocFaultFixture, InjectedAuthFaultRejectsThenRecovers)
{
    FaultPlan plan;
    plan.faults = {oneShot(FaultSite::noc_peephole_auth)};
    FaultInjector inj(plan);
    fabric.armFaults(&inj);

    // Same-world transfer that would normally authenticate.
    NocResult res = fabric.transfer(0, 0, 1, 0, 0, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.auth_failed);
    EXPECT_EQ(fabric.authRejects(), 1u);
    std::uint8_t out[16];
    ASSERT_EQ(spads[1]->read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0); // nothing landed

    // The one-shot budget is spent: the retry authenticates.
    NocResult retry = fabric.transfer(100, 0, 1, 0, 0, 1);
    EXPECT_TRUE(retry.ok);
    ASSERT_EQ(spads[1]->read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x42);
    fabric.armFaults(nullptr);
}

TEST_F(NocFaultFixture, InjectedHeadFlitCorruptionDropsThePacket)
{
    FaultPlan plan;
    plan.faults = {oneShot(FaultSite::noc_head_flit)};
    FaultInjector inj(plan);
    fabric.armFaults(&inj);

    NocResult res = fabric.transfer(0, 0, 1, 0, 0, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.corrupted);
    EXPECT_FALSE(res.auth_failed);
    EXPECT_EQ(fabric.corruptedPackets(), 1u);

    NocResult retry = fabric.transfer(100, 0, 1, 0, 0, 1);
    EXPECT_TRUE(retry.ok);
    EXPECT_EQ(fabric.corruptedPackets(), 1u);
    fabric.armFaults(nullptr);
}

} // namespace
} // namespace snpu
