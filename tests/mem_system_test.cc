/**
 * @file
 * Unit tests for the combined memory system: the world partition in
 * front of L2 + DRAM.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct MemSystemFixture : ::testing::Test
{
    MemSystemFixture() : stats("g"), mem(stats) {}

    stats::Group stats;
    MemSystem mem;
};

TEST_F(MemSystemFixture, NormalAccessToNormalMemorySucceeds)
{
    MemRequest req{mem.map().dram().base, 64, MemOp::read,
                   World::normal};
    MemResult res = mem.access(0, req);
    EXPECT_TRUE(res.ok);
    EXPECT_GT(res.done, 0u);
    EXPECT_EQ(mem.partitionViolations(), 0u);
}

TEST_F(MemSystemFixture, NormalAccessToSecureMemoryDenied)
{
    MemRequest req{mem.map().secureRegion().base, 64, MemOp::read,
                   World::normal};
    MemResult res = mem.access(0, req);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(mem.partitionViolations(), 1u);
}

TEST_F(MemSystemFixture, SecureAccessToSecureMemorySucceeds)
{
    MemRequest req{mem.map().secureRegion().base, 64, MemOp::write,
                   World::secure};
    EXPECT_TRUE(mem.access(0, req).ok);
}

TEST_F(MemSystemFixture, StraddlingAccessDenied)
{
    const Addr boundary = mem.map().secureRegion().base;
    MemRequest req{boundary - 32, 64, MemOp::read, World::normal};
    EXPECT_FALSE(mem.access(0, req).ok);
}

TEST_F(MemSystemFixture, DeniedAccessHasNoTimingSideEffect)
{
    const Tick free_before = mem.dram().nextFree();
    MemRequest req{mem.map().secureRegion().base, 64, MemOp::read,
                   World::normal};
    mem.access(0, req);
    EXPECT_EQ(mem.dram().nextFree(), free_before);
}

TEST_F(MemSystemFixture, UncachedPathBypassesL2)
{
    MemRequest req{mem.map().dram().base, 64, MemOp::read,
                   World::normal};
    mem.accessUncached(0, req);
    mem.accessUncached(200, req);
    EXPECT_EQ(mem.l2().hits(), 0u);
    EXPECT_EQ(mem.l2().misses(), 0u);
}

TEST_F(MemSystemFixture, UncachedStillEnforcesPartition)
{
    MemRequest req{mem.map().secureRegion().base, 64, MemOp::read,
                   World::normal};
    EXPECT_FALSE(mem.accessUncached(0, req).ok);
}

TEST_F(MemSystemFixture, CachedPathUsesL2)
{
    MemRequest req{mem.map().dram().base, 64, MemOp::read,
                   World::normal};
    MemResult miss = mem.access(0, req);
    MemResult hit = mem.access(miss.done, req);
    EXPECT_EQ(mem.l2().misses(), 1u);
    EXPECT_EQ(mem.l2().hits(), 1u);
    EXPECT_LT(hit.done - miss.done, miss.done);
}

TEST_F(MemSystemFixture, FunctionalDataIndependentOfTiming)
{
    const Addr addr = mem.map().dram().base + 0x1000;
    mem.data().write32(addr, 0xcafef00d);
    EXPECT_EQ(mem.data().read32(addr), 0xcafef00du);
}

} // namespace
} // namespace snpu
