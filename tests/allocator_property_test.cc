/**
 * @file
 * Property tests for the trusted allocator: under random alloc/free
 * sequences, live allocations never overlap, freed space is reusable
 * (coalescing works), and accounting balances.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"
#include "tee/monitor/trusted_allocator.hh"

namespace snpu
{
namespace
{

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AllocatorProperty, RandomAllocFreeKeepsInvariants)
{
    const AddrRange arena{0x1000, 1u << 20};
    TrustedAllocator alloc(arena);
    Rng rng(GetParam());

    std::map<Addr, Addr> live; // base -> requested size
    Addr live_bytes = 0;

    for (int op = 0; op < 4000; ++op) {
        if (live.empty() || rng.chance(0.55)) {
            const Addr size = 64 + rng.below(8192);
            const Addr base = alloc.alloc(size);
            if (base == 0)
                continue; // exhausted is legal
            // Inside the arena.
            EXPECT_TRUE(arena.contains(base, size));
            // Aligned.
            EXPECT_EQ(base % 64, 0u);
            // Disjoint from every live allocation (conservatively
            // use the aligned size bound of +63).
            for (const auto &[other, osize] : live) {
                const Addr oend = other + ((osize + 63) & ~Addr(63));
                const Addr end = base + ((size + 63) & ~Addr(63));
                EXPECT_TRUE(end <= other || oend <= base)
                    << "overlap: " << base << " vs " << other;
            }
            live[base] = size;
            live_bytes += (size + 63) & ~Addr(63);
        } else {
            auto it = live.begin();
            std::advance(it,
                         static_cast<long>(rng.below(live.size())));
            EXPECT_TRUE(alloc.free(it->first));
            live_bytes -= (it->second + 63) & ~Addr(63);
            live.erase(it);
        }
        EXPECT_EQ(alloc.bytesAllocated(), live_bytes);
        EXPECT_EQ(alloc.bytesFree(), arena.size - live_bytes);
    }

    // Free everything: the arena must coalesce back to one block
    // able to satisfy a full-size allocation.
    for (const auto &[base, size] : live)
        EXPECT_TRUE(alloc.free(base));
    EXPECT_EQ(alloc.bytesFree(), arena.size);
    const Addr whole = alloc.alloc(arena.size);
    EXPECT_EQ(whole, arena.base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1, 9, 81, 6561));

TEST(AllocatorEdge, DoubleFreeRejected)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x10000});
    const Addr a = alloc.alloc(128);
    ASSERT_NE(a, 0u);
    EXPECT_TRUE(alloc.free(a));
    EXPECT_FALSE(alloc.free(a));
}

TEST(AllocatorEdge, ZeroByteAllocReturnsZero)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x10000});
    EXPECT_EQ(alloc.alloc(0), 0u);
}

TEST(AllocatorEdge, OversizeAllocReturnsZero)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x1000});
    EXPECT_EQ(alloc.alloc(0x2000), 0u);
    EXPECT_EQ(alloc.bytesAllocated(), 0u);
}

} // namespace
} // namespace snpu
