/**
 * @file
 * Unit tests for the multi-tile NPU device assembly.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "npu/npu_device.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct DeviceFixture : ::testing::Test
{
    DeviceFixture()
        : stats("g"), mem(stats)
    {
        for (std::uint32_t i = 0; i < 10; ++i)
            controls.push_back(std::make_unique<PassThroughControl>());
        std::vector<AccessControl *> raw;
        for (auto &c : controls)
            raw.push_back(c.get());
        NpuDeviceParams p;
        p.core.spad_rows = 512;
        p.core.acc_rows = 128;
        device = std::make_unique<NpuDevice>(stats, mem, raw, p);
    }

    stats::Group stats;
    MemSystem mem;
    std::vector<std::unique_ptr<PassThroughControl>> controls;
    std::unique_ptr<NpuDevice> device;
};

TEST_F(DeviceFixture, GeometryMatchesTableII)
{
    EXPECT_EQ(device->tiles(), 10u);
    EXPECT_EQ(device->mesh().nodes(), 10u);
    EXPECT_EQ(device->mesh().cols(), 5u);
    EXPECT_EQ(device->mesh().meshRows(), 2u);
    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(device->core(i).id(), i);
}

TEST_F(DeviceFixture, CoreIndexOutOfRangePanics)
{
    EXPECT_THROW(device->core(10), PanicError);
}

TEST_F(DeviceFixture, SetCoreWorldSyncsMesh)
{
    EXPECT_TRUE(device->setCoreWorld(3, World::secure, true));
    EXPECT_EQ(device->core(3).idState(), World::secure);
    EXPECT_EQ(device->mesh().nodeWorld(3), World::secure);
    // Unprivileged change rejected, state unchanged.
    EXPECT_FALSE(device->setCoreWorld(3, World::normal, false));
    EXPECT_EQ(device->core(3).idState(), World::secure);
}

TEST_F(DeviceFixture, SoftwareTransferMovesRows)
{
    std::uint8_t row[16];
    std::memset(row, 0x2b, sizeof(row));
    ASSERT_EQ(device->core(0).scratchpad().write(World::normal, 4, row),
              SpadStatus::ok);
    NocResult res = device->softwareTransfer(0, 0, 1, 4, 8, 1);
    EXPECT_TRUE(res.ok);
    std::uint8_t out[16];
    ASSERT_EQ(device->core(1).scratchpad().read(World::normal, 8, out),
              SpadStatus::ok);
    EXPECT_EQ(out[0], 0x2b);
}

TEST_F(DeviceFixture, GlobalScratchpadSharedRules)
{
    Scratchpad &global = device->globalScratchpad();
    EXPECT_EQ(global.scope(), SpadScope::global);
    std::uint8_t row[16] = {1};
    ASSERT_EQ(global.write(World::secure, 0, row), SpadStatus::ok);
    EXPECT_EQ(global.read(World::normal, 0, nullptr),
              SpadStatus::security_violation);
}

TEST(DeviceConfig, MismatchedControllersFatal)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl one;
    std::vector<AccessControl *> raw{&one};
    NpuDeviceParams p; // 10 tiles
    EXPECT_THROW(NpuDevice(stats, mem, raw, p), FatalError);
}

TEST(DeviceConfig, MeshMustCoverTiles)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    std::vector<std::unique_ptr<PassThroughControl>> controls;
    std::vector<AccessControl *> raw;
    for (int i = 0; i < 4; ++i) {
        controls.push_back(std::make_unique<PassThroughControl>());
        raw.push_back(controls.back().get());
    }
    NpuDeviceParams p;
    p.tiles = 4;
    p.mesh.cols = 5;
    p.mesh.rows = 2;
    EXPECT_THROW(NpuDevice(stats, mem, raw, p), FatalError);
    p.mesh.cols = 2;
    p.mesh.rows = 2;
    p.core.spad_rows = 256;
    p.core.acc_rows = 64;
    NpuDevice ok(stats, mem, raw, p);
    EXPECT_EQ(ok.tiles(), 4u);
}

} // namespace
} // namespace snpu
