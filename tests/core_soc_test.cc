/**
 * @file
 * Tests for the assembled SoC: the three comparative systems and
 * their driver-visible security semantics.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

TEST(SocBuild, NormalNpu)
{
    Soc soc(makeSystem(SystemKind::normal_npu));
    EXPECT_FALSE(soc.hasMonitor());
    EXPECT_THROW(soc.monitor(), PanicError);
    // The passthrough backend neither enforces nor translates, and
    // narrows to neither backend-specific type.
    const auto caps = soc.protection(0).capabilities();
    EXPECT_FALSE(caps.enforces);
    EXPECT_FALSE(caps.translates);
    EXPECT_EQ(soc.protection(0).asIommu(), nullptr);
    EXPECT_EQ(soc.protection(0).asGuarder(), nullptr);
    EXPECT_EQ(soc.npu().tiles(), 10u);
}

TEST(SocBuild, TrustzoneNpu)
{
    Soc soc(makeSystem(SystemKind::trustzone_npu));
    EXPECT_FALSE(soc.hasMonitor());
    EXPECT_TRUE(soc.protection(0).capabilities().uses_page_table);
    EXPECT_NE(soc.protection(9).asIommu(), nullptr); // one per tile
    soc.pageTable();
    EXPECT_THROW(soc.protection(10), PanicError);
}

TEST(SocBuild, Snpu)
{
    Soc soc(makeSystem(SystemKind::snpu));
    EXPECT_TRUE(soc.hasMonitor());
    EXPECT_NE(soc.protection(9).asGuarder(), nullptr);
    soc.monitor();
    EXPECT_THROW(soc.pageTable(), PanicError);
}

TEST(SocBuild, PartitionModeAppliesBoundary)
{
    SocParams params = makeSystem(SystemKind::trustzone_npu);
    params.spad_isolation = IsolationMode::partition;
    params.partition_secure_frac = 0.25;
    Soc soc(params);
    Scratchpad &spad = soc.npu().core(0).scratchpad();
    EXPECT_EQ(spad.usableRows(World::secure), params.spadRows() / 4);
    EXPECT_EQ(spad.usableRows(World::normal),
              params.spadRows() * 3 / 4);
}

TEST(SocBuild, DescribeMentionsSystem)
{
    SocParams params = makeSystem(SystemKind::snpu);
    EXPECT_NE(params.describe().find("snpu"), std::string::npos);
    EXPECT_NE(makeSystem(SystemKind::trustzone_npu)
                  .describe()
                  .find("iommu"),
              std::string::npos);
}

TEST(SocSecurity, NormalNpuLetsDriverFlipWorlds)
{
    Soc soc(makeSystem(SystemKind::normal_npu));
    // The unprotected NPU trusts the driver: this is the missing
    // check the attacks exploit.
    EXPECT_TRUE(soc.driverSetCoreWorld(0, World::secure,
                                       SecureContext::normalDriver()));
    EXPECT_EQ(soc.npu().core(0).idState(), World::secure);
}

TEST(SocSecurity, SnpuRequiresSecurePrivilege)
{
    Soc soc(makeSystem(SystemKind::snpu));
    EXPECT_FALSE(soc.driverSetCoreWorld(
        0, World::secure, SecureContext::normalDriver()));
    EXPECT_EQ(soc.npu().core(0).idState(), World::normal);
    EXPECT_TRUE(soc.driverSetCoreWorld(0, World::secure,
                                       SecureContext::monitor()));
    EXPECT_EQ(soc.npu().core(0).idState(), World::secure);
}

TEST(SocSecurity, SnpuRequiresGuarderAccessControl)
{
    SocParams params = makeSystem(SystemKind::snpu);
    params.protection = "passthrough";
    EXPECT_THROW(Soc soc(params), FatalError);
}

TEST(SocConfig, DerivedValues)
{
    SocParams params = makeSystem(SystemKind::snpu);
    EXPECT_EQ(params.spadRows(), 16384u);
    EXPECT_DOUBLE_EQ(params.dramBytesPerCycle(), 16.0);
}

} // namespace
} // namespace snpu
