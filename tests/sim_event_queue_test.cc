/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * bounded runs, and misuse detection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace snpu
{
namespace
{

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, prio_default);
    eq.schedule(5, [&] { order.push_back(2); }, prio_default);
    eq.schedule(5, [&] { order.push_back(0); }, prio_first);
    eq.schedule(5, [&] { order.push_back(3); }, prio_last);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runUntil(50);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.reset();
    eq.run();
    EXPECT_EQ(count, 0);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, recurse);
    };
    eq.schedule(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, InsertionSequenceBreaksTiesAtScale)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 200; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBeatsSequenceWithinATick)
{
    EventQueue eq;
    std::vector<int> order;
    // Scrambled priorities at one tick; each priority class must
    // still run in insertion order.
    const int prios[] = {90, 10, 50, 10, 90, 50, 0, 100};
    for (int i = 0; i < 8; ++i)
        eq.schedule(3, [&order, i] { order.push_back(i); }, prios[i]);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{6, 1, 3, 2, 5, 0, 4, 7}));
}

TEST(EventQueue, StressMatchesStableSortReference)
{
    // 2000 events with colliding ticks and priorities must execute
    // in exactly (tick, priority, insertion) order.
    struct Ref
    {
        Tick when;
        int priority;
        int id;
    };
    EventQueue eq;
    Rng rng(99);
    std::vector<Ref> refs;
    std::vector<int> order;
    for (int i = 0; i < 2000; ++i) {
        const Tick when = rng.below(64);
        const int prio = static_cast<int>(rng.below(4)) * 25;
        refs.push_back(Ref{when, prio, i});
        eq.schedule(when, [&order, i] { order.push_back(i); }, prio);
    }
    eq.run();
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref &a, const Ref &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.priority < b.priority;
                     });
    ASSERT_EQ(order.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i)
        EXPECT_EQ(order[i], refs[i].id) << "position " << i;
}

TEST(EventQueue, RunUntilExecutesEventExactlyAtLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(11, [&] { ++count; });
    eq.runUntil(10);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilOnDrainedQueueKeepsLastEventTick)
{
    EventQueue eq;
    eq.schedule(30, [] {});
    eq.runUntil(100);
    // Queue drained before the limit: now() stays at the last
    // event's tick, not the limit.
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, ResetKeepsClockSequenceAndExecutedCount)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.run();
    eq.schedule(50, [&] { ++count; });
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    // Survivors: clock, executed() total, and the no-time-travel
    // invariant (scheduling before now() still panics).
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, HardResetRestoresConstructedState)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&] { ++count; });
    eq.schedule(200, [&] { ++count; });
    eq.run();
    eq.hardReset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    // A reused queue behaves like a fresh one: early ticks are legal
    // again and ordering starts over.
    std::vector<int> order;
    eq.schedule(2, [&order] { order.push_back(2); });
    eq.schedule(1, [&order] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, LargeCapturesFallBackToHeap)
{
    // A capture bigger than the callback's inline storage must still
    // work (heap fallback path).
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 136u);
}

TEST(EventQueue, MoveOnlyCallablesAreAccepted)
{
    // EventCallback is move-only storage, so move-only captures work
    // (std::function used to reject these).
    EventQueue eq;
    auto value = std::make_unique<int>(41);
    int seen = 0;
    eq.schedule(1, [v = std::move(value), &seen] { seen = *v + 1; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CallbacksSurviveHeapRebalancing)
{
    // Heap-fallback callbacks moved through pop/sift cycles must
    // stay intact (exercises EventCallback's move path).
    EventQueue eq;
    std::vector<int> order;
    std::array<char, 64> big{};
    for (int i = 63; i >= 0; --i) {
        big[0] = static_cast<char>(i);
        eq.schedule(static_cast<Tick>(i), [big, &order] {
            order.push_back(big[0]);
        });
    }
    eq.run();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimObject, KeepsName)
{
    SimObject obj("soc.npu.core0");
    EXPECT_EQ(obj.name(), "soc.npu.core0");
}

} // namespace
} // namespace snpu
