/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * bounded runs, and misuse detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, prio_default);
    eq.schedule(5, [&] { order.push_back(2); }, prio_default);
    eq.schedule(5, [&] { order.push_back(0); }, prio_first);
    eq.schedule(5, [&] { order.push_back(3); }, prio_last);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runUntil(50);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.reset();
    eq.run();
    EXPECT_EQ(count, 0);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, recurse);
    };
    eq.schedule(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(SimObject, KeepsName)
{
    SimObject obj("soc.npu.core0");
    EXPECT_EQ(obj.name(), "soc.npu.core0");
}

} // namespace
} // namespace snpu
