/**
 * @file
 * Unit tests for the detailed (cycle-stepped) router model:
 * XY output selection, wormhole channel ownership, round-robin
 * arbitration, and back-pressure.
 */

#include <gtest/gtest.h>

#include "noc/router.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

Flit
head(std::uint32_t src, std::uint32_t dst)
{
    Flit f;
    f.type = FlitType::head;
    f.src_core = src;
    f.dst_core = dst;
    return f;
}

Flit
body(std::uint32_t src, std::uint32_t dst, std::uint32_t seq)
{
    Flit f;
    f.type = FlitType::body;
    f.src_core = src;
    f.dst_core = dst;
    f.seq = seq;
    return f;
}

Flit
tail(std::uint32_t src, std::uint32_t dst)
{
    Flit f;
    f.type = FlitType::tail;
    f.src_core = src;
    f.dst_core = dst;
    return f;
}

TEST(Router, XyOutputSelection)
{
    // Router at (2, 0) of a 5x2 mesh.
    Router router(2, 0, 5, 2);
    EXPECT_EQ(router.route(3), RouterPort::east);
    EXPECT_EQ(router.route(0), RouterPort::west);
    EXPECT_EQ(router.route(7), RouterPort::south);
    EXPECT_EQ(router.route(2), RouterPort::local);
    // X is corrected before Y: node 9 is east then south.
    EXPECT_EQ(router.route(9), RouterPort::east);
}

TEST(Router, MovesFlitToOutputLatch)
{
    Router router(0, 0, 5, 2);
    ASSERT_TRUE(router.accept(RouterPort::local, head(0, 2)));
    router.step();
    auto flit = router.collect(RouterPort::east);
    ASSERT_TRUE(flit.has_value());
    EXPECT_EQ(flit->dst_core, 2u);
}

TEST(Router, WormholeKeepsChannelForOnePacket)
{
    Router router(0, 0, 5, 2);
    // Two complete packets competing for the east output: A from
    // local (head/body/tail), B from north (head/tail). Whoever wins
    // arbitration must drain its whole packet before the other's
    // head passes — no interleaving of owners.
    ASSERT_TRUE(router.accept(RouterPort::local, head(0, 2)));
    ASSERT_TRUE(router.accept(RouterPort::local, body(0, 2, 0)));
    ASSERT_TRUE(router.accept(RouterPort::local, tail(0, 2)));
    ASSERT_TRUE(router.accept(RouterPort::north, head(5, 2)));
    ASSERT_TRUE(router.accept(RouterPort::north, tail(5, 2)));

    std::vector<Flit> sequence;
    for (int cycle = 0; cycle < 8; ++cycle) {
        router.step();
        if (auto flit = router.collect(RouterPort::east))
            sequence.push_back(*flit);
    }
    ASSERT_EQ(sequence.size(), 5u);

    // Each packet must come out contiguously, head first.
    std::size_t i = 0;
    while (i < sequence.size()) {
        ASSERT_EQ(sequence[i].type, FlitType::head);
        const std::uint32_t owner = sequence[i].src_core;
        ++i;
        while (i < sequence.size() &&
               sequence[i].type != FlitType::head) {
            EXPECT_EQ(sequence[i].src_core, owner)
                << "foreign flit interleaved at " << i;
            ++i;
        }
    }
}

TEST(Router, BackPressureWhenLatchFull)
{
    Router router(0, 0, 5, 2);
    ASSERT_TRUE(router.accept(RouterPort::local, head(0, 2)));
    router.step();
    // Latch not collected: the next step must not overwrite it.
    ASSERT_TRUE(router.accept(RouterPort::local, body(0, 2, 0)));
    router.step();
    auto flit = router.collect(RouterPort::east);
    ASSERT_TRUE(flit.has_value());
    EXPECT_EQ(flit->type, FlitType::head);
    // Body still queued, moves on the next step.
    router.step();
    auto next = router.collect(RouterPort::east);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->type, FlitType::body);
}

TEST(Router, QueueCapacityEnforced)
{
    Router router(0, 0, 5, 2, 2);
    EXPECT_TRUE(router.accept(RouterPort::local, head(0, 2)));
    EXPECT_TRUE(router.accept(RouterPort::local, body(0, 2, 0)));
    EXPECT_FALSE(router.accept(RouterPort::local, body(0, 2, 1)));
    EXPECT_FALSE(router.canAccept(RouterPort::local));
    EXPECT_EQ(router.queued(RouterPort::local), 2u);
}

TEST(Router, RoundRobinRotatesBetweenInputs)
{
    Router router(1, 0, 5, 2);
    // Two single-flit "packets" (head-only control flits would be
    // head+tail in practice; use head flits routed to local).
    ASSERT_TRUE(router.accept(RouterPort::west, head(0, 1)));
    ASSERT_TRUE(router.accept(RouterPort::east, head(2, 1)));
    router.step();
    auto first = router.collect(RouterPort::local);
    ASSERT_TRUE(first.has_value());
    // A head without a tail holds the channel; send its tail.
    ASSERT_TRUE(router.accept(
        first->src_core == 0 ? RouterPort::west : RouterPort::east,
        tail(first->src_core, 1)));
    router.step();
    router.collect(RouterPort::local);
    router.step();
    auto second = router.collect(RouterPort::local);
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(second->src_core, first->src_core);
}

TEST(Router, BadGeometryIsFatal)
{
    EXPECT_THROW(Router(5, 0, 5, 2), FatalError);
    EXPECT_THROW(Router(0, 0, 5, 2, 0), FatalError);
}

TEST(Router, RouteOutsideMeshPanics)
{
    Router router(0, 0, 5, 2);
    EXPECT_THROW(router.route(10), PanicError);
}

} // namespace
} // namespace snpu
