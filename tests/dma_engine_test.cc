/**
 * @file
 * Unit tests for the DMA engine: packetization, access-control
 * integration at both granularities, denial handling, and functional
 * data movement.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/dma_engine.hh"
#include "mem/mem_system.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

/** Scriptable controller for stall/denial testing. */
class MockControl : public AccessControl
{
  public:
    CheckGranularity gran = CheckGranularity::packet;
    Tick stall = 0;
    bool deny = false;
    std::uint64_t calls = 0;

    CheckGranularity granularity() const override { return gran; }

    Translation
    translate(Tick when, Addr vaddr, std::uint32_t, MemOp,
              World) override
    {
        ++calls;
        if (deny)
            return Translation{false, 0, when + stall};
        return Translation{true, vaddr, when + stall};
    }

    std::uint64_t checkCount() const override { return calls; }
    std::uint64_t denyCount() const override { return 0; }
};

struct DmaFixture : ::testing::Test
{
    DmaFixture()
        : stats("g"), mem(stats), pass_through(),
          engine(stats, mem, pass_through)
    {
        base = mem.map().dram().base;
    }

    stats::Group stats;
    MemSystem mem;
    PassThroughControl pass_through;
    DmaEngine engine;
    Addr base = 0;
};

TEST_F(DmaFixture, SplitsIntoPackets)
{
    DmaRequest req{base, 1024, MemOp::read, World::normal};
    DmaResult res = engine.transfer(0, req, nullptr);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.packets, 16u); // 1024 / 64
    EXPECT_EQ(engine.totalBytes(), 1024u);
}

TEST_F(DmaFixture, NonMultiplePacketSizes)
{
    DmaRequest req{base, 100, MemOp::read, World::normal};
    DmaResult res = engine.transfer(0, req, nullptr);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.packets, 2u); // 64 + 36
    EXPECT_EQ(engine.totalBytes(), 100u);
}

TEST_F(DmaFixture, ZeroByteTransferIsNoOp)
{
    DmaRequest req{base, 0, MemOp::read, World::normal};
    DmaResult res = engine.transfer(5, req, nullptr);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.packets, 0u);
    EXPECT_EQ(res.done, 5u);
}

TEST_F(DmaFixture, RequestLevelControllerCheckedOnce)
{
    MockControl ctrl;
    ctrl.gran = CheckGranularity::request;
    stats::Group g2("g2");
    DmaEngine eng(g2, mem, ctrl);
    DmaRequest req{base, 4096, MemOp::read, World::normal};
    eng.transfer(0, req, nullptr);
    EXPECT_EQ(ctrl.calls, 1u);
}

TEST_F(DmaFixture, PacketLevelControllerCheckedPerPacket)
{
    MockControl ctrl;
    ctrl.gran = CheckGranularity::packet;
    stats::Group g2("g2");
    DmaEngine eng(g2, mem, ctrl);
    DmaRequest req{base, 4096, MemOp::read, World::normal};
    eng.transfer(0, req, nullptr);
    EXPECT_EQ(ctrl.calls, 64u);
}

TEST_F(DmaFixture, TranslationStallsDelayCompletion)
{
    MockControl fast;
    fast.gran = CheckGranularity::packet;
    stats::Group g_fast("g_fast");
    DmaEngine eng_fast(g_fast, mem, fast);
    DmaRequest req{base, 1024, MemOp::read, World::normal};
    const Tick fast_done = eng_fast.transfer(0, req, nullptr).done;

    MockControl slow;
    slow.gran = CheckGranularity::packet;
    slow.stall = 50;
    stats::Group g_slow("g_slow");
    DmaEngine eng_slow(g_slow, mem, slow);
    DmaRequest req2{base + (1u << 20), 1024, MemOp::read,
                    World::normal};
    const Tick slow_done = eng_slow.transfer(0, req2, nullptr).done;
    EXPECT_GT(slow_done, fast_done + 16 * 40);
}

TEST_F(DmaFixture, DenialAbortsTransfer)
{
    MockControl ctrl;
    ctrl.deny = true;
    stats::Group g2("g2");
    DmaEngine eng(g2, mem, ctrl);
    DmaRequest req{base, 256, MemOp::read, World::normal};
    DmaResult res = eng.transfer(0, req, nullptr);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.packets, 0u);
    EXPECT_EQ(eng.denied(), 1u);
}

TEST_F(DmaFixture, PartitionDenialAbortsTransfer)
{
    DmaRequest req{mem.map().secureRegion().base, 128, MemOp::read,
                   World::normal};
    DmaResult res = engine.transfer(0, req, nullptr);
    EXPECT_FALSE(res.ok);
}

TEST_F(DmaFixture, FunctionalReadMovesBytes)
{
    const char *msg = "dma-functional-read";
    mem.data().write(base + 0x100, msg, 20);
    DmaRequest req{base + 0x100, 64, MemOp::read, World::normal};
    std::vector<std::uint8_t> buffer;
    engine.transfer(0, req, &buffer);
    ASSERT_EQ(buffer.size(), 64u);
    EXPECT_EQ(std::memcmp(buffer.data(), msg, 20), 0);
}

TEST_F(DmaFixture, FunctionalWriteMovesBytes)
{
    std::vector<std::uint8_t> buffer(128, 0x7e);
    DmaRequest req{base + 0x2000, 128, MemOp::write, World::normal};
    engine.transfer(0, req, &buffer);
    EXPECT_EQ(mem.data().read8(base + 0x2000), 0x7e);
    EXPECT_EQ(mem.data().read8(base + 0x2000 + 127), 0x7e);
}

TEST_F(DmaFixture, ThroughputBoundedByMemoryBandwidth)
{
    DmaRequest req{base + (2u << 20), 1u << 16, MemOp::read,
                   World::normal};
    DmaResult res = engine.transfer(0, req, nullptr);
    // 64 KiB at 16 B/cycle needs at least 4096 cycles.
    EXPECT_GE(res.done, 4096u);
}

} // namespace
} // namespace snpu
