/**
 * @file
 * Fault-tolerant fleet serving: kill-rate-0 parity with independent
 * SoCs, deterministic replay, mid-decode kill -> migration with KV
 * re-prefill accounting, the failover-off collapse baseline,
 * priority-ordered load shedding, degrade cordons, the fleet
 * migration breaker, and the serve-layer satellites (half-open
 * tenant breaker, admission-queue deadlines, retry jitter).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/systems.hh"
#include "fleet/fleet_controller.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/fault_injector.hh"
#include "sim/hashing.hh"
#include "sim/random.hh"
#include "workload/model_zoo.hh"

namespace snpu
{
namespace
{

/** "t<i>" without operator+ (GCC 12 -Wrestrict false positive). */
std::string
tname(std::uint32_t t)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%u", t);
    return buf;
}

NpuTask
smallTask(World world = World::normal)
{
    NpuTask task = NpuTask::fromModel(ModelId::mobilenet, world);
    task.model = task.model.scaled(64);
    return task;
}

FaultSpec
probSpec(FaultSite site, double p)
{
    FaultSpec spec;
    spec.site = site;
    spec.trigger = FaultTrigger::probability;
    spec.probability = p;
    spec.max_fires = 0;
    return spec;
}

/**
 * Replay the controller's open-loop schedule draw for SoC @p n of a
 * crash-only plan: first probe tick at which the site fires, or 0.
 * Tests scan fleet seeds with this to choreograph which SoC dies
 * (and when) without giving the controller any per-SoC plan knob.
 */
Tick
firstFire(FaultSite site, double p, std::uint64_t fleet_seed,
          std::uint32_t n, Tick hb, Tick horizon)
{
    FaultPlan plan;
    plan.faults = {probSpec(site, p)};
    plan.seed = hashMix(fleet_seed, std::uint64_t(n) + 1);
    FaultInjector inj(plan);
    for (Tick t = hb; t <= horizon; t += hb) {
        if (inj.shouldInject(site, t))
            return t;
    }
    return 0;
}

/** Serialize a fleet request for exact-replay comparisons. */
std::string
reqKey(const FleetRequest &r)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "a%llu f%llu s%d n%u m%d;",
                  static_cast<unsigned long long>(r.arrival),
                  static_cast<unsigned long long>(r.finished),
                  static_cast<int>(r.final), r.soc,
                  r.migrated ? 1 : 0);
    return buf;
}

std::string
ledgerKey(const FleetResult &res)
{
    std::string out;
    for (const auto &tenant : res.requests)
        for (const FleetRequest &r : tenant)
            out += reqKey(r);
    return out;
}

FleetConfig
baseConfig(std::uint32_t socs)
{
    FleetConfig fc;
    fc.num_socs = socs;
    fc.soc = makeSystem(SystemKind::snpu);
    fc.server.num_cores = 2;
    fc.heartbeat_interval = 10'000;
    fc.heartbeat_misses = 3;
    fc.hang_detect_factor = 4;
    fc.migration_backoff = 1'000;
    fc.resettle_cycles = 500;
    fc.breaker_cooldown = 50'000;
    return fc;
}

FleetTenantSpec
plainTenant(const std::string &name, std::uint32_t home,
            std::vector<Tick> arrivals, std::int32_t priority = 0,
            World world = World::normal)
{
    FleetTenantSpec ft;
    ft.spec.name = name;
    ft.spec.task = smallTask(world);
    // Roomy queues: migration dumps a tenant's whole pending set on
    // the target at once, and these tests assert on failover
    // outcomes, not admission pressure.
    ft.spec.queue_capacity = 32;
    ft.spec.arrivals = std::move(arrivals);
    ft.home = home;
    ft.priority = priority;
    return ft;
}

std::vector<Tick>
everyN(Tick gap, std::uint32_t count, Tick start = 0)
{
    std::vector<Tick> arrivals(count);
    for (std::uint32_t i = 0; i < count; ++i)
        arrivals[i] = start + gap * i;
    return arrivals;
}

/**
 * Kill rate 0: the fleet must serve exactly like N fully
 * independent single-SoC servers — same per-request outcomes, no
 * fleet-only events.
 */
TEST(Fleet, KillRateZeroMatchesIndependentSocs)
{
    constexpr std::uint32_t socs = 3;
    std::vector<FleetTenantSpec> tenants;
    for (std::uint32_t t = 0; t < socs; ++t) {
        Rng rng(hashMix(std::uint64_t{7}, std::uint64_t(t)));
        tenants.push_back(plainTenant(
            tname(t), t,
            burstyArrivals(rng, 150'000.0, 4.0, 3.0, 6),
            static_cast<std::int32_t>(t),
            t == 0 ? World::secure : World::normal));
    }

    FleetConfig fc = baseConfig(socs);
    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.evictions, 0u);
    EXPECT_EQ(res.migrations, 0u);
    EXPECT_EQ(res.shed, 0u);
    EXPECT_EQ(res.offered, std::uint64_t{socs} * 6u);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);

    for (std::uint32_t n = 0; n < socs; ++n) {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig sc = fc.server;
        sc.record_requests = true;
        sc.jitter_seed =
            hashMix(fc.server.jitter_seed, std::uint64_t(n) + 1);
        SnpuServer server(*soc, sc);
        ServeResult solo = server.serve({tenants[n].spec});
        ASSERT_TRUE(solo.ok()) << solo.error();

        // Multiset compare: the fleet ledger is in arrival order,
        // solo records are in completion order.
        std::vector<std::string> fleet_reqs, solo_reqs;
        for (const FleetRequest &r : res.requests[n]) {
            EXPECT_EQ(r.soc, n);
            EXPECT_FALSE(r.migrated);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "a%llu f%llu s%d",
                          static_cast<unsigned long long>(r.arrival),
                          static_cast<unsigned long long>(
                              r.finished),
                          static_cast<int>(r.final));
            fleet_reqs.push_back(buf);
        }
        for (const RequestOutcome &o : solo.tenants[0].requests) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "a%llu f%llu s%d",
                          static_cast<unsigned long long>(o.arrival),
                          static_cast<unsigned long long>(
                              o.finished),
                          static_cast<int>(o.final));
            solo_reqs.push_back(buf);
        }
        std::sort(fleet_reqs.begin(), fleet_reqs.end());
        std::sort(solo_reqs.begin(), solo_reqs.end());
        EXPECT_EQ(fleet_reqs, solo_reqs) << "SoC " << n;
    }
}

/** The same killing configuration replays bit-for-bit. */
TEST(Fleet, RunIsDeterministic)
{
    const auto build = [] {
        std::vector<FleetTenantSpec> tenants;
        for (std::uint32_t t = 0; t < 4; ++t) {
            tenants.push_back(plainTenant(
                tname(t), t, everyN(60'000, 8),
                static_cast<std::int32_t>(t)));
        }
        FleetConfig fc = baseConfig(4);
        fc.fault_injection = true;
        fc.horizon = 400'000;
        fc.fault_plan.seed = 33;
        fc.fault_plan.faults = {
            probSpec(FaultSite::soc_crash, 0.05),
            probSpec(FaultSite::soc_hang, 0.01),
            probSpec(FaultSite::soc_degrade, 0.01),
            probSpec(FaultSite::fleet_migration, 0.2)};
        return std::make_pair(fc, tenants);
    };

    auto [fc1, tenants1] = build();
    FleetController a(fc1);
    FleetResult ra = a.run(tenants1);
    ASSERT_TRUE(ra.ok()) << ra.error();

    auto [fc2, tenants2] = build();
    FleetController b(fc2);
    FleetResult rb = b.run(tenants2);
    ASSERT_TRUE(rb.ok()) << rb.error();

    EXPECT_EQ(ledgerKey(ra), ledgerKey(rb));
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.failed, rb.failed);
    EXPECT_EQ(ra.evictions, rb.evictions);
    EXPECT_EQ(ra.migrations, rb.migrations);
    EXPECT_EQ(ra.migration_failures, rb.migration_failures);
    EXPECT_EQ(ra.re_prefills, rb.re_prefills);
    EXPECT_EQ(ra.lost_tokens, rb.lost_tokens);
    EXPECT_EQ(ra.p99, rb.p99);
    EXPECT_EQ(ra.makespan, rb.makespan);
}

/**
 * Kill a SoC mid-generation: the decode tenant's pending requests
 * migrate to the warm SoC, pay the secure-session resettle, re-run
 * prefill (the KV cache died with the source), and still complete.
 */
TEST(Fleet, MidDecodeKillMigratesAndReprefills)
{
    // Learn the decode timeline on a solo SoC first.
    TenantSpec dec;
    dec.name = "gen";
    dec.task = smallTask(World::normal);
    dec.task.name = "gen";
    dec.decode_tokens = 16;
    dec.decoder = makeDecoder(DecoderId::tinygpt);
    dec.arrivals = everyN(50'000, 4);

    auto probe_soc = buildSoc(SystemKind::snpu);
    ServerConfig probe_cfg;
    probe_cfg.num_cores = 2;
    probe_cfg.record_requests = true;
    probe_cfg.jitter_seed =
        hashMix(ServerConfig{}.jitter_seed, std::uint64_t{1});
    SnpuServer probe(*probe_soc, probe_cfg);
    ServeResult solo = probe.serve({dec});
    ASSERT_TRUE(solo.ok()) << solo.error();
    const RequestOutcome *mid = nullptr;
    for (const RequestOutcome &o : solo.tenants[0].requests) {
        if (o.final == StatusCode::ok && o.prefill_done != 0 &&
            o.token_ticks.size() >= 4) {
            mid = &o;
            break;
        }
    }
    ASSERT_NE(mid, nullptr) << "no mid-generation request to kill";

    // Kill strictly inside this request's decode phase: after its
    // second token, before its last.
    const Tick lo = mid->token_ticks[1] + 1;
    const Tick hi = mid->token_ticks.back() - 1;
    ASSERT_LT(lo, hi);

    const Tick hb = 1'000;
    const Tick horizon = hi;
    const double p =
        1.0 / static_cast<double>(horizon / hb ? horizon / hb : 1);
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200'000 && !seed; ++s) {
        const Tick f0 = firstFire(FaultSite::soc_crash, p, s, 0, hb,
                                  horizon);
        const Tick f1 = firstFire(FaultSite::soc_crash, p, s, 1, hb,
                                  horizon);
        if (f0 >= lo && f0 <= hi && f1 == 0)
            seed = s;
    }
    ASSERT_NE(seed, 0u) << "no seed kills SoC 0 mid-decode";

    FleetConfig fc = baseConfig(2);
    fc.heartbeat_interval = hb;
    fc.fault_injection = true;
    fc.horizon = horizon;
    fc.fault_plan.seed = seed;
    fc.fault_plan.faults = {probSpec(FaultSite::soc_crash, p)};

    std::vector<FleetTenantSpec> tenants;
    FleetTenantSpec gen;
    gen.spec = dec;
    gen.home = 0;
    gen.priority = 1;
    tenants.push_back(gen);
    tenants.push_back(
        plainTenant("side", 1, everyN(100'000, 4), 0));

    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    ASSERT_TRUE(res.ok()) << res.error();

    EXPECT_EQ(res.evictions, 1u);
    EXPECT_TRUE(res.socs[0].crashed);
    EXPECT_EQ(res.migrations, 1u);
    EXPECT_GE(res.socs[0].migrated_out, 1u);
    EXPECT_GE(res.socs[1].migrated_in, 1u);
    // The killed mid-generation request lost its tokens and re-ran
    // prefill on the target.
    EXPECT_GE(res.re_prefills, 1u);
    EXPECT_GE(res.lost_tokens, 2u);
    EXPECT_GT(res.migration_cycles, 0u);
    // Failover is lossless here: everything completes.
    EXPECT_EQ(res.completed, res.offered);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
    bool any_migrated = false;
    for (const FleetRequest &r : res.requests[0]) {
        EXPECT_EQ(r.final, StatusCode::ok);
        if (r.migrated) {
            any_migrated = true;
            EXPECT_EQ(r.soc, 1u);
        }
    }
    EXPECT_TRUE(any_migrated);

    // Collapse baseline: the identical schedule with failover off
    // fails every pending request at the detection tick.
    FleetConfig off_cfg = fc;
    off_cfg.failover = false;
    FleetController off(off_cfg);
    FleetResult off_res = off.run(tenants);
    ASSERT_TRUE(off_res.ok()) << off_res.error();
    EXPECT_EQ(off_res.evictions, 1u);
    EXPECT_EQ(off_res.migrations, 0u);
    EXPECT_EQ(off_res.re_prefills, 0u);
    EXPECT_GT(off_res.failed, 0u);
    EXPECT_LT(off_res.completed, res.completed);
    bool any_failed = false;
    for (const FleetRequest &r : off_res.requests[0]) {
        if (r.final == StatusCode::fault_injected) {
            any_failed = true;
            EXPECT_EQ(r.finished, res.socs[0].detected_tick);
        }
    }
    EXPECT_TRUE(any_failed);
}

/**
 * Graceful degradation sheds strictly by priority: when capacity
 * drops below the threshold, the low-priority migrant is shed with
 * StatusCode::degraded while a high-priority migrant in the same
 * spot keeps its failover.
 */
TEST(Fleet, ShedRespectsPriority)
{
    const Tick hb = 10'000;
    const Tick horizon = 400'000;
    const double p = 0.05;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200'000 && !seed; ++s) {
        const Tick f0 = firstFire(FaultSite::soc_crash, p, s, 0, hb,
                                  horizon);
        const Tick f1 = firstFire(FaultSite::soc_crash, p, s, 1, hb,
                                  horizon);
        if (f0 >= 100'000 && f0 <= 300'000 && f1 == 0)
            seed = s;
    }
    ASSERT_NE(seed, 0u);

    const auto run = [&](std::int32_t victim_priority,
                         std::int32_t survivor_priority) {
        FleetConfig fc = baseConfig(2);
        fc.heartbeat_interval = hb;
        fc.fault_injection = true;
        fc.horizon = horizon;
        fc.fault_plan.seed = seed;
        fc.fault_plan.faults = {probSpec(FaultSite::soc_crash, p)};
        // Any capacity loss triggers shedding; with 2 tenants the
        // keep set is ceil(0.5 * 2) = 1, the higher priority.
        fc.shed_below_capacity = 1.0;
        std::vector<FleetTenantSpec> tenants;
        tenants.push_back(plainTenant("victim", 0,
                                      everyN(40'000, 10),
                                      victim_priority));
        tenants.push_back(plainTenant("survivor", 1,
                                      everyN(40'000, 10),
                                      survivor_priority));
        FleetController fleet(fc);
        return fleet.run(tenants);
    };

    // Low-priority tenant on the dying SoC: shed, not migrated.
    FleetResult low = run(1, 10);
    ASSERT_TRUE(low.ok()) << low.error();
    EXPECT_EQ(low.evictions, 1u);
    EXPECT_GT(low.shed, 0u);
    EXPECT_EQ(low.migrations, 0u);
    bool any_degraded = false;
    for (const FleetRequest &r : low.requests[0])
        any_degraded |= r.final == StatusCode::degraded;
    EXPECT_TRUE(any_degraded);
    for (const FleetRequest &r : low.requests[1])
        EXPECT_EQ(r.final, StatusCode::ok);

    // High-priority tenant in the same spot: kept, migrated.
    FleetResult high = run(10, 1);
    ASSERT_TRUE(high.ok()) << high.error();
    EXPECT_EQ(high.evictions, 1u);
    EXPECT_EQ(high.shed, 0u);
    EXPECT_EQ(high.migrations, 1u);
    for (const FleetRequest &r : high.requests[0])
        EXPECT_EQ(r.final, StatusCode::ok);
}

/**
 * A degraded SoC cordons: it drains its own work to completion but
 * is never evicted and never receives migrants.
 */
TEST(Fleet, DegradeCordonsWithoutEviction)
{
    const Tick hb = 10'000;
    const Tick horizon = 300'000;
    const double p = 0.05;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200'000 && !seed; ++s) {
        const Tick f0 = firstFire(FaultSite::soc_degrade, p, s, 0,
                                  hb, horizon);
        const Tick f1 = firstFire(FaultSite::soc_degrade, p, s, 1,
                                  hb, horizon);
        if (f0 != 0 && f1 == 0)
            seed = s;
    }
    ASSERT_NE(seed, 0u);

    FleetConfig fc = baseConfig(2);
    fc.heartbeat_interval = hb;
    fc.fault_injection = true;
    fc.horizon = horizon;
    fc.fault_plan.seed = seed;
    fc.fault_plan.faults = {probSpec(FaultSite::soc_degrade, p)};

    std::vector<FleetTenantSpec> tenants;
    tenants.push_back(plainTenant("t0", 0, everyN(50'000, 6), 1));
    tenants.push_back(plainTenant("t1", 1, everyN(50'000, 6), 0));
    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    ASSERT_TRUE(res.ok()) << res.error();

    EXPECT_EQ(res.evictions, 0u);
    EXPECT_EQ(res.migrations, 0u);
    EXPECT_TRUE(res.socs[0].degraded);
    EXPECT_FALSE(res.socs[0].crashed);
    EXPECT_EQ(res.socs[0].migrated_out, 0u);
    EXPECT_EQ(res.socs[0].migrated_in, 0u);
    EXPECT_EQ(res.completed, res.offered);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
}

/**
 * Repeated migration-handshake failures trip the fleet breaker;
 * the next eviction after the cool-down gets exactly one half-open
 * trial, which re-trips while the handshake path stays down.
 */
TEST(Fleet, MigrationBreakerTripsAndProbesHalfOpen)
{
    const Tick hb = 10'000;
    const Tick horizon = 600'000;
    const double p = 0.05;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 500'000 && !seed; ++s) {
        const Tick f0 = firstFire(FaultSite::soc_crash, p, s, 0, hb,
                                  horizon);
        const Tick f1 = firstFire(FaultSite::soc_crash, p, s, 1, hb,
                                  horizon);
        const Tick f2 = firstFire(FaultSite::soc_crash, p, s, 2, hb,
                                  horizon);
        if (f0 != 0 && f1 >= f0 + 8 * hb && f2 == 0)
            seed = s;
    }
    ASSERT_NE(seed, 0u);

    FleetConfig fc = baseConfig(3);
    fc.heartbeat_interval = hb;
    fc.fault_injection = true;
    fc.horizon = horizon;
    fc.fault_plan.seed = seed;
    // Crash schedule as choreographed; every handshake attempt
    // fails (probability 1), so migration never succeeds.
    fc.fault_plan.faults = {
        probSpec(FaultSite::soc_crash, p),
        probSpec(FaultSite::fleet_migration, 1.0)};
    fc.migration_retries = 3;
    fc.breaker_threshold = 2;
    fc.breaker_cooldown = 1;

    std::vector<FleetTenantSpec> tenants;
    for (std::uint32_t t = 0; t < 3; ++t) {
        tenants.push_back(plainTenant(
            tname(t), t, everyN(30'000, 24),
            static_cast<std::int32_t>(t)));
    }
    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    ASSERT_TRUE(res.ok()) << res.error();

    EXPECT_EQ(res.evictions, 2u);
    EXPECT_EQ(res.migrations, 0u);
    // First eviction: threshold consecutive failures trip the
    // breaker. Second eviction (after the 1-cycle cool-down): one
    // half-open trial, which fails and re-trips.
    EXPECT_GE(res.breaker_trips, 2u);
    EXPECT_GE(res.breaker_probes, 1u);
    EXPECT_EQ(res.breaker_readmissions, 0u);
    EXPECT_GE(res.migration_failures, 3u);
    EXPECT_GT(res.failed, 0u);
}

/**
 * Tenant-level half-open breaker: a tenant quarantined by repeated
 * verification faults is re-admitted through a successful half-open
 * trial once the cool-down elapses and the fault clears.
 */
TEST(Fleet, HalfOpenTenantBreakerReadmitsAfterCooldown)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.fault_injection = true;
    cfg.quarantine_threshold = 3;
    cfg.quarantine_cooldown = 1'000'000;
    cfg.record_requests = true;
    // Every monitor verification inside the window fails; the
    // window closes long before the late arrivals.
    FaultSpec spec = probSpec(FaultSite::monitor_verify, 1.0);
    spec.trigger = FaultTrigger::tick_window;
    spec.window_begin = 0;
    spec.window_end = 2'000'000;
    cfg.fault_plan.faults = {spec};

    TenantSpec tenant;
    tenant.name = "sec";
    tenant.task = smallTask(World::secure);
    tenant.arrivals = {0,         60'000,    120'000,
                       5'000'000, 8'000'000, 9'000'000};

    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve({tenant});
    ASSERT_TRUE(res.ok()) << res.error();
    const TenantReport &rep = res.tenants[0];

    // Three in-window failures trip the breaker; the 5M arrival is
    // past the cool-down and becomes the half-open trial, which
    // succeeds (the fault window is over) and closes the breaker.
    EXPECT_EQ(rep.failed, 3u);
    EXPECT_EQ(rep.completed, 3u);
    EXPECT_EQ(rep.breaker_trips, 1u);
    EXPECT_EQ(rep.breaker_probes, 1u);
    EXPECT_EQ(rep.breaker_readmissions, 1u);
    EXPECT_FALSE(rep.quarantined);

    // Legacy contract: without a cool-down the breaker never
    // half-opens and the tenant stays quarantined.
    auto soc2 = buildSoc(SystemKind::snpu);
    ServerConfig forever = cfg;
    forever.quarantine_cooldown = 0;
    SnpuServer server2(*soc2, forever);
    ServeResult res2 = server2.serve({tenant});
    ASSERT_TRUE(res2.ok()) << res2.error();
    const TenantReport &rep2 = res2.tenants[0];
    EXPECT_TRUE(rep2.quarantined);
    EXPECT_EQ(rep2.completed, 0u);
    EXPECT_EQ(rep2.breaker_probes, 0u);
    EXPECT_EQ(rep2.breaker_readmissions, 0u);
    EXPECT_EQ(rep2.failed + rep2.rejected, 6u);
}

/**
 * Admission-queue deadline: requests whose queue wait exceeds the
 * deadline fail with StatusCode::timeout instead of serving stale.
 */
TEST(Fleet, QueueDeadlineTimesOutStaleRequests)
{
    const auto serve = [](Tick deadline) {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig cfg;
        cfg.num_cores = 1;
        cfg.queue_deadline = deadline;
        cfg.record_requests = true;
        TenantSpec tenant;
        tenant.name = "q";
        tenant.task = smallTask();
        tenant.arrivals = {0, 0, 0, 0};
        SnpuServer server(*soc, cfg);
        return server.serve({tenant});
    };

    ServeResult no_deadline = serve(0);
    ASSERT_TRUE(no_deadline.ok()) << no_deadline.error();
    EXPECT_EQ(no_deadline.tenants[0].completed, 4u);
    EXPECT_EQ(no_deadline.tenants[0].timeouts, 0u);

    // Four simultaneous arrivals on one tile: anything that waits
    // longer than a sliver of a service time times out in queue.
    ServeResult tight = serve(1'000);
    ASSERT_TRUE(tight.ok()) << tight.error();
    const TenantReport &rep = tight.tenants[0];
    EXPECT_GE(rep.timeouts, 2u);
    EXPECT_GE(rep.completed, 1u);
    EXPECT_EQ(rep.completed + rep.timeouts, 4u);
    bool any_timeout_code = false;
    for (const RequestOutcome &o : rep.requests)
        any_timeout_code |= o.final == StatusCode::timeout;
    EXPECT_TRUE(any_timeout_code);

    // Per-tenant override beats the server default.
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 1;
    cfg.queue_deadline = 1'000;
    TenantSpec tenant;
    tenant.name = "q";
    tenant.task = smallTask();
    tenant.arrivals = {0, 0, 0, 0};
    tenant.queue_deadline = 1'000'000'000;
    SnpuServer server(*soc, cfg);
    ServeResult wide = server.serve({tenant});
    ASSERT_TRUE(wide.ok()) << wide.error();
    EXPECT_EQ(wide.tenants[0].completed, 4u);
    EXPECT_EQ(wide.tenants[0].timeouts, 0u);
}

/**
 * Seeded retry jitter: decorrelated backoff stays a pure function
 * of the jitter seed, so a jittered schedule replays bit-for-bit.
 */
TEST(Fleet, RetryJitterIsDeterministic)
{
    const auto serve = [](std::uint64_t jitter_seed) {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig cfg;
        cfg.num_cores = 2;
        cfg.fault_injection = true;
        cfg.max_retries = 3;
        cfg.retry_backoff = 500;
        cfg.retry_jitter = true;
        cfg.jitter_seed = jitter_seed;
        cfg.record_requests = true;
        // Transient DMA faults: every retry path gets exercised.
        FaultSpec spec = probSpec(FaultSite::dma_transfer, 0.3);
        cfg.fault_plan.faults = {spec};
        TenantSpec tenant;
        tenant.name = "jit";
        tenant.task = smallTask();
        Rng rng(11);
        tenant.arrivals = poissonArrivals(rng, 150'000.0, 8);
        SnpuServer server(*soc, cfg);
        return server.serve({tenant});
    };

    ServeResult a = serve(42);
    ServeResult b = serve(42);
    ASSERT_TRUE(a.ok()) << a.error();
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_GT(a.tenants[0].retries, 0u);
    EXPECT_EQ(a.tenants[0].retries, b.tenants[0].retries);
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    ASSERT_EQ(a.tenants[0].requests.size(),
              b.tenants[0].requests.size());
    for (std::size_t i = 0; i < a.tenants[0].requests.size(); ++i) {
        EXPECT_EQ(a.tenants[0].requests[i].finished,
                  b.tenants[0].requests[i].finished);
    }
}

} // namespace
} // namespace snpu
