/**
 * @file
 * Unit tests for the host-parallel sweep runner: submission-order
 * collection, bit-identical results at any thread count, failure
 * isolation, and pool reuse.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/sweep_runner.hh"

namespace snpu
{
namespace
{

/**
 * A miniature simulation: drains a per-job event chain and mixes the
 * job's private RNG stream into a digest. Exercises both context
 * members, so any cross-thread contamination changes the result.
 */
std::uint64_t
simulate(SweepContext &ctx)
{
    std::uint64_t digest = ctx.seed();
    EventQueue &eq = ctx.events();
    for (int i = 0; i < 32; ++i) {
        eq.scheduleIn(1 + ctx.rng().below(64), [&digest, &ctx, i] {
            digest = digest * 6364136223846793005ULL +
                     ctx.rng().next() + static_cast<std::uint64_t>(i);
        });
    }
    eq.run();
    return digest ^ eq.now();
}

std::vector<SweepOutcome<std::uint64_t>>
runSweep(unsigned threads, std::size_t n_jobs)
{
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);
    std::vector<std::function<std::uint64_t(SweepContext &)>> jobs;
    for (std::size_t i = 0; i < n_jobs; ++i)
        jobs.push_back(simulate);
    return runner.map<std::uint64_t>(jobs);
}

TEST(SweepRunner, CollectsResultsInSubmissionOrder)
{
    SweepOptions opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    std::vector<std::function<int(SweepContext &)>> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back([](SweepContext &ctx) {
            return static_cast<int>(ctx.index()) * 3;
        });
    auto out = runner.map<int>(jobs);
    ASSERT_EQ(out.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(out[i].ok());
        EXPECT_EQ(out[i].value, i * 3);
    }
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts)
{
    const auto one = runSweep(1, 24);
    const auto two = runSweep(2, 24);
    const auto many = runSweep(8, 24);
    ASSERT_EQ(one.size(), 24u);
    for (std::size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok());
        EXPECT_EQ(one[i].value, two[i].value) << "job " << i;
        EXPECT_EQ(one[i].value, many[i].value) << "job " << i;
    }
}

TEST(SweepRunner, SeedDependsOnIndexNotThread)
{
    for (unsigned threads : {1u, 3u}) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        std::vector<std::function<std::uint64_t(SweepContext &)>> jobs;
        for (int i = 0; i < 8; ++i)
            jobs.push_back(
                [](SweepContext &ctx) { return ctx.seed(); });
        auto out = runner.map<std::uint64_t>(jobs);
        SweepRunner ref(SweepOptions{1});
        auto expect = ref.map<std::uint64_t>(jobs);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(out[i].value, expect[i].value);
    }
}

TEST(SweepRunner, ThrowingJobReportsFailedStatusOnly)
{
    SweepOptions opts;
    opts.threads = 3;
    SweepRunner runner(opts);
    std::vector<std::function<int(SweepContext &)>> jobs;
    for (int i = 0; i < 9; ++i) {
        jobs.push_back([](SweepContext &ctx) {
            if (ctx.index() == 4)
                throw std::runtime_error("deliberate failure");
            return static_cast<int>(ctx.index());
        });
    }
    auto out = runner.map<int>(jobs);
    ASSERT_EQ(out.size(), 9u);
    for (int i = 0; i < 9; ++i) {
        if (i == 4) {
            EXPECT_FALSE(out[i].ok());
            EXPECT_EQ(out[i].status.code(), StatusCode::internal);
            EXPECT_NE(out[i].status.message().find(
                          "deliberate failure"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(out[i].ok()) << out[i].status.toString();
            EXPECT_EQ(out[i].value, i);
        }
    }

    // The pool survives a failed job: a second batch runs clean.
    std::vector<SweepRunner::Job> again(5, [](SweepContext &) {});
    for (const Status &st : runner.runAll(again))
        EXPECT_TRUE(st.isOk());
}

TEST(SweepRunner, NonStdExceptionBecomesInternalStatus)
{
    SweepRunner runner(SweepOptions{2});
    std::vector<SweepRunner::Job> jobs{
        [](SweepContext &) { throw 42; }};
    auto statuses = runner.runAll(jobs);
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_EQ(statuses[0].code(), StatusCode::internal);
}

TEST(SweepRunner, EmptyBatchReturnsEmpty)
{
    SweepRunner runner(SweepOptions{2});
    EXPECT_TRUE(runner.runAll({}).empty());
}

TEST(SweepRunner, MorePoolReuseThanThreads)
{
    SweepRunner runner(SweepOptions{2});
    for (int batch = 0; batch < 4; ++batch) {
        std::vector<std::function<int(SweepContext &)>> jobs;
        for (int i = 0; i < 7; ++i)
            jobs.push_back([batch](SweepContext &ctx) {
                return batch * 100 + static_cast<int>(ctx.index());
            });
        auto out = runner.map<int>(jobs);
        for (int i = 0; i < 7; ++i)
            EXPECT_EQ(out[i].value, batch * 100 + i);
    }
}

TEST(SweepRunner, ContextQueueStartsFresh)
{
    SweepRunner runner(SweepOptions{2});
    std::vector<std::function<std::uint64_t(SweepContext &)>> jobs;
    for (int i = 0; i < 6; ++i) {
        jobs.push_back([](SweepContext &ctx) {
            EXPECT_EQ(ctx.events().now(), 0u);
            EXPECT_EQ(ctx.events().executed(), 0u);
            EXPECT_EQ(ctx.events().pending(), 0u);
            ctx.events().scheduleIn(5, [] {});
            return ctx.events().run();
        });
    }
    for (const auto &o : runner.map<std::uint64_t>(jobs))
        EXPECT_EQ(o.value, 5u);
}

TEST(SweepThreadCount, ExplicitWinsOverEnvironment)
{
    ::setenv("SNPU_JOBS", "3", 1);
    EXPECT_EQ(sweepThreadCount(7), 7u);
    EXPECT_EQ(sweepThreadCount(0), 3u);
    ::unsetenv("SNPU_JOBS");
    EXPECT_GE(sweepThreadCount(0), 1u);
}

TEST(SweepThreadCount, MalformedEnvironmentIgnored)
{
    ::setenv("SNPU_JOBS", "banana", 1);
    EXPECT_GE(sweepThreadCount(0), 1u);
    ::setenv("SNPU_JOBS", "-2", 1);
    EXPECT_GE(sweepThreadCount(0), 1u);
    ::unsetenv("SNPU_JOBS");
}

} // namespace
} // namespace snpu
