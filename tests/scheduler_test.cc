/**
 * @file
 * Tests for the time-shared scheduler: the Table I comparison of
 * isolation mechanisms under multi-tasking — a periodic
 * high-priority task preempting a long background task.
 */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "core/systems.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

SchedScenario
scenario()
{
    SchedScenario s;
    s.background = NpuTask::fromModel(ModelId::bert, World::normal, 0);
    s.background.model = s.background.model.scaled(8);
    s.periodic =
        NpuTask::fromModel(ModelId::yololite, World::secure, 10);
    s.periodic.model = s.periodic.model.scaled(8);
    s.period = 800000;
    s.instances = 8;
    return s;
}

SchedResult
runPolicy(SchedPolicy policy, std::uint32_t coarse = 5)
{
    auto soc = buildSoc(SystemKind::snpu);
    TimeSharedScheduler sched(*soc, policy, coarse);
    SchedResult res = sched.run(scenario());
    EXPECT_TRUE(res.ok()) << schedPolicyName(policy) << ": "
                        << res.error();
    return res;
}

TEST(Scheduler, AllPoliciesComplete)
{
    for (SchedPolicy policy :
         {SchedPolicy::flush_fine, SchedPolicy::flush_coarse,
          SchedPolicy::partition, SchedPolicy::id_based}) {
        SchedResult res = runPolicy(policy);
        ASSERT_TRUE(res.ok());
        EXPECT_GT(res.makespan, 0u);
        EXPECT_GT(res.background_completion, 0u);
        EXPECT_GT(res.worst_latency, 0u);
        EXPECT_GT(res.utilization, 0.0);
        EXPECT_LE(res.utilization, 1.0);
    }
}

TEST(Scheduler, FineFlushPaysOverheadIdBasedDoesNot)
{
    SchedResult fine = runPolicy(SchedPolicy::flush_fine);
    SchedResult idb = runPolicy(SchedPolicy::id_based);
    EXPECT_GT(fine.flush_overhead, 0u);
    EXPECT_EQ(idb.flush_overhead, 0u);
    EXPECT_GT(fine.makespan, idb.makespan);
}

TEST(Scheduler, CoarseFlushHurtsSlaButCostsLessThanFine)
{
    SchedResult coarse = runPolicy(SchedPolicy::flush_coarse, 8);
    SchedResult fine = runPolicy(SchedPolicy::flush_fine);
    SchedResult idb = runPolicy(SchedPolicy::id_based);

    // The high-priority task waits behind the amortization window
    // (Table I: coarse flush = poor SLA)...
    EXPECT_GT(coarse.worst_latency, idb.worst_latency);
    EXPECT_GT(coarse.worst_latency, fine.worst_latency);
    // ...in exchange for fewer flushes than fine-grained switching.
    EXPECT_LT(coarse.flush_overhead, fine.flush_overhead);
}

TEST(Scheduler, IdBasedSlaMatchesFineFlushWithoutItsCost)
{
    SchedResult fine = runPolicy(SchedPolicy::flush_fine);
    SchedResult idb = runPolicy(SchedPolicy::id_based);
    // Both switch eagerly; sNPU just does not pay for it. Allow a
    // few percent of scheduling-alignment jitter.
    EXPECT_LE(idb.worst_latency, fine.worst_latency * 105 / 100);
}

TEST(Scheduler, PartitionSlowerThanIdBasedForCapacitySensitiveNets)
{
    // The BERT background is scratchpad-capacity sensitive: half
    // the rows means more weight reloads (the Fig 15 effect).
    SchedResult part = runPolicy(SchedPolicy::partition);
    SchedResult idb = runPolicy(SchedPolicy::id_based);
    EXPECT_GT(part.background_completion, idb.background_completion);
    EXPECT_LT(part.utilization, idb.utilization + 1e-9);
}

TEST(Scheduler, UtilizationOrdering)
{
    // sNPU keeps the core doing useful MACs the largest fraction of
    // the time among the secure policies.
    SchedResult fine = runPolicy(SchedPolicy::flush_fine);
    SchedResult part = runPolicy(SchedPolicy::partition);
    SchedResult idb = runPolicy(SchedPolicy::id_based);
    EXPECT_GE(idb.utilization, fine.utilization);
    EXPECT_GE(idb.utilization, part.utilization);
}

TEST(Scheduler, ZeroCoarseIntervalIsFatal)
{
    auto soc = buildSoc(SystemKind::snpu);
    EXPECT_THROW(
        TimeSharedScheduler(*soc, SchedPolicy::flush_coarse, 0),
        FatalError);
}

} // namespace
} // namespace snpu
