/**
 * @file
 * Integration test: compile a small model with the tiling compiler
 * and execute it functionally on an NPU core, verifying the full
 * data path (DMA -> scratchpad -> systolic array -> accumulator ->
 * memory) against a reference GEMM, and that predicted DMA volume
 * matches what the engine actually moved.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/mem_system.hh"
#include "npu/npu_core.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "workload/compiler.hh"

namespace snpu
{
namespace
{

struct ExecFixture : ::testing::Test
{
    ExecFixture() : stats("g"), mem(stats)
    {
        NpuCoreParams p;
        p.spad_rows = 2048;
        p.acc_rows = 512;
        p.timing_only = false;
        core = std::make_unique<NpuCore>(stats, mem, pass, p);
        base = mem.map().npuArena(World::normal).base;
    }

    stats::Group stats;
    MemSystem mem;
    PassThroughControl pass;
    std::unique_ptr<NpuCore> core;
    Addr base;
};

TEST_F(ExecFixture, CompiledLayerComputesCorrectGemm)
{
    // One layer: C[32 x 32] = A[32 x 48] * W[48 x 32], no relu.
    LayerSpec layer;
    layer.name = "gemm";
    layer.m = 32;
    layer.n = 32;
    layer.k = 48;
    layer.relu = false;
    ModelSpec model;
    model.name = "unit";
    model.layers = {layer};

    CompilerParams cp;
    cp.spad_rows = 2048;
    cp.acc_rows = 512;
    TilingCompiler compiler(cp);
    Addr footprint = 0;
    NpuProgram prog = compiler.compileModel(model, base, &footprint);

    // Fill A (K-tile-column-major rows of 16) and W (per-N-tile
    // K-columns of 16x16 tiles) with small random int8 values laid
    // out exactly as the compiler expects them in memory.
    Rng rng(3);
    const std::uint32_t k_tiles = 3;
    const std::uint32_t n_tiles = 2;
    std::vector<std::int8_t> a(layer.m * layer.k);
    std::vector<std::int8_t> w(layer.k * layer.n);
    for (auto &v : a)
        v = static_cast<std::int8_t>(rng.range(-4, 4));
    for (auto &v : w)
        v = static_cast<std::int8_t>(rng.range(-4, 4));

    // A layout: for k-tile kt, row r: 16 bytes A[r][kt*16..+16).
    const Addr a_base = base;
    for (std::uint32_t kt = 0; kt < k_tiles; ++kt) {
        for (std::uint32_t r = 0; r < layer.m; ++r) {
            std::int8_t row16[16];
            for (int i = 0; i < 16; ++i)
                row16[i] = a[r * layer.k + kt * 16 + i];
            mem.data().write(
                a_base + (static_cast<Addr>(kt) * layer.m + r) * 16,
                row16, 16);
        }
    }
    // W layout: for n-tile nt, its K-column of 16x16 tiles, rows are
    // weight rows W[k][nt*16..+16).
    const Addr a_bytes_aligned =
        (static_cast<Addr>(k_tiles) * layer.m * 16 + 4095) &
        ~Addr(4095);
    const Addr w_base = base + a_bytes_aligned;
    for (std::uint32_t nt = 0; nt < n_tiles; ++nt) {
        for (std::uint32_t k = 0; k < layer.k; ++k) {
            std::int8_t row16[16];
            for (int i = 0; i < 16; ++i)
                row16[i] = w[k * layer.n + nt * 16 + i];
            mem.data().write(
                w_base + (static_cast<Addr>(nt) * k_tiles * 16 + k) *
                             16,
                row16, 16);
        }
    }
    const Addr w_bytes_aligned =
        (static_cast<Addr>(n_tiles) * k_tiles * 16 * 16 + 4095) &
        ~Addr(4095);
    const Addr c_base = w_base + w_bytes_aligned;

    ExecResult res = core->run(0, prog, ExecOptions{});
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.macs,
              static_cast<std::uint64_t>(layer.m) * 3 * 16 * 2 * 16);

    // Verify every output element against the reference
    // (requantized by >>8 with saturation; values are small enough
    // that most land in a narrow range — still a full check).
    for (std::uint32_t r = 0; r < layer.m; ++r) {
        for (std::uint32_t c = 0; c < layer.n; ++c) {
            std::int32_t sum = 0;
            for (std::uint32_t k = 0; k < layer.k; ++k)
                sum += static_cast<std::int32_t>(a[r * layer.k + k]) *
                       w[k * layer.n + c];
            std::int32_t q = sum >> 8;
            q = std::clamp(q, -128, 127);
            const std::uint32_t nt = c / 16;
            const Addr addr = c_base +
                              (static_cast<Addr>(nt) * layer.m + r) *
                                  16 +
                              (c % 16);
            const auto got =
                static_cast<std::int8_t>(mem.data().read8(addr));
            ASSERT_EQ(got, static_cast<std::int8_t>(q))
                << "r=" << r << " c=" << c << " sum=" << sum;
        }
    }
}

TEST_F(ExecFixture, MeasuredDmaVolumeMatchesPlan)
{
    LayerSpec layer;
    layer.name = "gemm";
    layer.m = 128;
    layer.n = 128;
    layer.k = 128;
    ModelSpec model;
    model.layers = {layer};

    CompilerParams cp;
    cp.spad_rows = 2048;
    cp.acc_rows = 512;
    TilingCompiler compiler(cp);
    const LayerPlan plan = compiler.plan(layer);
    NpuProgram prog = compiler.compileModel(model, base);

    ExecResult res = core->run(0, prog, ExecOptions{});
    ASSERT_TRUE(res.ok()) << res.error();
    const std::uint64_t moved = core->dma().totalBytes();
    // The plan's prediction should match the engine's accounting
    // within 20% (rounding of partial tiles).
    EXPECT_NEAR(static_cast<double>(moved),
                static_cast<double>(plan.dma_bytes),
                0.2 * static_cast<double>(plan.dma_bytes));
}

TEST_F(ExecFixture, TwoLayerModelChainsBuffers)
{
    LayerSpec l1;
    l1.name = "l1";
    l1.m = 32;
    l1.n = 32;
    l1.k = 32;
    LayerSpec l2 = l1;
    l2.name = "l2";
    ModelSpec model;
    model.layers = {l1, l2};

    CompilerParams cp;
    cp.spad_rows = 2048;
    cp.acc_rows = 512;
    TilingCompiler compiler(cp);
    NpuProgram prog = compiler.compileModel(model, base);
    ExecResult res = core->run(0, prog, ExecOptions{});
    EXPECT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.macs, l1.macs() + l2.macs());
}

} // namespace
} // namespace snpu
