/**
 * @file
 * Unit and property tests for the scratchpad and the ID-based
 * isolation rules of the NPU Isolator (§IV-B).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "spad/scratchpad.hh"

namespace snpu
{
namespace
{

SpadParams
smallSpad(SpadScope scope, IsolationMode mode)
{
    SpadParams p;
    p.rows = 64;
    p.row_bytes = 16;
    p.scope = scope;
    p.mode = mode;
    return p;
}

struct LocalIdSpad : ::testing::Test
{
    LocalIdSpad()
        : stats("g"),
          spad(stats, smallSpad(SpadScope::local,
                                IsolationMode::id_based))
    {
    }

    stats::Group stats;
    Scratchpad spad;
};

TEST_F(LocalIdSpad, WriteSetsIdState)
{
    std::uint8_t row[16] = {1};
    EXPECT_EQ(spad.write(World::secure, 5, row), SpadStatus::ok);
    EXPECT_EQ(spad.idState(5), World::secure);
}

TEST_F(LocalIdSpad, ReadRequiresIdMatch)
{
    std::uint8_t row[16] = {42};
    spad.write(World::secure, 3, row);
    std::uint8_t out[16] = {};
    // Cross-world read denied (this is the LeftoverLocals fix).
    EXPECT_EQ(spad.read(World::normal, 3, out),
              SpadStatus::security_violation);
    EXPECT_EQ(out[0], 0);
    // Same-world read succeeds.
    EXPECT_EQ(spad.read(World::secure, 3, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 42);
    EXPECT_EQ(spad.violations(), 1u);
}

TEST_F(LocalIdSpad, ForcedWriteFlipsOwnership)
{
    std::uint8_t secret[16] = {0x55};
    spad.write(World::secure, 7, secret);
    // The normal world may forcibly write: the line flips to normal
    // and the secret is replaced, never revealed.
    std::uint8_t junk[16] = {0xaa};
    EXPECT_EQ(spad.write(World::normal, 7, junk), SpadStatus::ok);
    EXPECT_EQ(spad.idState(7), World::normal);
    std::uint8_t out[16];
    EXPECT_EQ(spad.read(World::normal, 7, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0xaa);
}

TEST_F(LocalIdSpad, BadIndexReported)
{
    EXPECT_EQ(spad.read(World::normal, 64, nullptr),
              SpadStatus::bad_index);
    EXPECT_EQ(spad.write(World::normal, 1000, nullptr),
              SpadStatus::bad_index);
}

TEST_F(LocalIdSpad, SecureResetScrubsAndReleases)
{
    std::uint8_t secret[16] = {0x77};
    spad.write(World::secure, 0, secret);
    spad.write(World::secure, 1, secret);
    // Reset from a non-secure context is rejected.
    EXPECT_FALSE(spad.secureReset(0, 2, false));
    EXPECT_EQ(spad.idState(0), World::secure);
    // The secure instruction releases and scrubs.
    EXPECT_TRUE(spad.secureReset(0, 2, true));
    EXPECT_EQ(spad.idState(0), World::normal);
    std::uint8_t out[16];
    EXPECT_EQ(spad.read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0);
}

TEST_F(LocalIdSpad, SecureResetBoundsChecked)
{
    EXPECT_FALSE(spad.secureReset(60, 10, true));
}

struct GlobalIdSpad : ::testing::Test
{
    GlobalIdSpad()
        : stats("g"),
          spad(stats, smallSpad(SpadScope::global,
                                IsolationMode::id_based))
    {
    }

    stats::Group stats;
    Scratchpad spad;
};

TEST_F(GlobalIdSpad, NormalCannotWriteSecureLine)
{
    std::uint8_t row[16] = {9};
    spad.write(World::secure, 2, row);
    // Unlike the local rule, the shared scratchpad forbids even the
    // forced write from the normal world.
    EXPECT_EQ(spad.write(World::normal, 2, row),
              SpadStatus::security_violation);
    EXPECT_EQ(spad.idState(2), World::secure);
}

TEST_F(GlobalIdSpad, SecureAccessClaimsLine)
{
    std::uint8_t out[16];
    EXPECT_EQ(spad.idState(4), World::normal);
    EXPECT_EQ(spad.read(World::secure, 4, out), SpadStatus::ok);
    EXPECT_EQ(spad.idState(4), World::secure);
}

TEST_F(GlobalIdSpad, NormalReadOfSecureLineDenied)
{
    std::uint8_t row[16] = {1};
    spad.write(World::secure, 6, row);
    EXPECT_EQ(spad.read(World::normal, 6, nullptr),
              SpadStatus::security_violation);
}

struct PartitionSpad : ::testing::Test
{
    PartitionSpad()
        : stats("g"),
          spad(stats, [] {
              SpadParams p =
                  smallSpad(SpadScope::local, IsolationMode::partition);
              p.partition_boundary = 16; // secure: rows [0, 16)
              return p;
          }())
    {
    }

    stats::Group stats;
    Scratchpad spad;
};

TEST_F(PartitionSpad, WorldsConfinedToTheirHalves)
{
    EXPECT_EQ(spad.write(World::secure, 0, nullptr), SpadStatus::ok);
    EXPECT_EQ(spad.write(World::secure, 16, nullptr),
              SpadStatus::security_violation);
    EXPECT_EQ(spad.write(World::normal, 16, nullptr), SpadStatus::ok);
    EXPECT_EQ(spad.write(World::normal, 15, nullptr),
              SpadStatus::security_violation);
}

TEST_F(PartitionSpad, UsableRowsReflectBoundary)
{
    EXPECT_EQ(spad.usableRows(World::secure), 16u);
    EXPECT_EQ(spad.usableRows(World::normal), 48u);
}

TEST(UnprotectedSpad, LeftoverLocalsIsPossible)
{
    stats::Group stats("g");
    Scratchpad spad(stats,
                    smallSpad(SpadScope::local, IsolationMode::none));
    std::uint8_t secret[16] = {0xde, 0xad};
    spad.write(World::secure, 0, secret);
    std::uint8_t out[16] = {};
    // Without protection, the stale secret leaks — the vulnerability
    // the Isolator exists to close.
    EXPECT_EQ(spad.read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0xde);
    EXPECT_EQ(out[1], 0xad);
}

TEST(SpadConfig, ModeCanBeSwitched)
{
    stats::Group stats("g");
    Scratchpad spad(stats,
                    smallSpad(SpadScope::local, IsolationMode::none));
    spad.setMode(IsolationMode::id_based);
    EXPECT_EQ(spad.mode(), IsolationMode::id_based);
    EXPECT_EQ(spad.usableRows(World::secure), spad.rows());
}

/**
 * Property test: under ID-based isolation, no sequence of random
 * operations ever lets a normal-world read return bytes last written
 * by the secure world.
 */
struct SpadPropertyParam
{
    SpadScope scope;
    std::uint64_t seed;
};

class SpadIsolationProperty
    : public ::testing::TestWithParam<SpadPropertyParam>
{
};

TEST_P(SpadIsolationProperty, NormalNeverReadsSecureBytes)
{
    const auto param = GetParam();
    stats::Group stats("g");
    Scratchpad spad(stats,
                    smallSpad(param.scope, IsolationMode::id_based));
    Rng rng(param.seed);

    // Track which rows currently hold secure-written data.
    std::set<std::uint32_t> secure_rows;

    for (int op = 0; op < 5000; ++op) {
        const auto row = static_cast<std::uint32_t>(rng.below(64));
        const World world =
            rng.chance(0.5) ? World::secure : World::normal;
        std::uint8_t buf[16];

        if (rng.chance(0.5)) {
            // Write: secure writes 0xA5, normal writes 0x11.
            std::memset(buf, world == World::secure ? 0xa5 : 0x11,
                        sizeof(buf));
            const SpadStatus st = spad.write(world, row, buf);
            if (st == SpadStatus::ok) {
                if (world == World::secure)
                    secure_rows.insert(row);
                else
                    secure_rows.erase(row);
            }
        } else {
            const SpadStatus st = spad.read(world, row, buf);
            if (world == World::normal && st == SpadStatus::ok) {
                // The isolation invariant.
                EXPECT_EQ(secure_rows.count(row), 0u)
                    << "normal read of secure row " << row;
                for (std::uint8_t b : buf)
                    EXPECT_NE(b, 0xa5) << "secure byte leaked";
            }
            if (world == World::secure && st == SpadStatus::ok &&
                param.scope == SpadScope::global) {
                // Secure access claims the line under the global rule.
                EXPECT_EQ(spad.idState(row), World::secure);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ScopesAndSeeds, SpadIsolationProperty,
    ::testing::Values(SpadPropertyParam{SpadScope::local, 1},
                      SpadPropertyParam{SpadScope::local, 99},
                      SpadPropertyParam{SpadScope::global, 1},
                      SpadPropertyParam{SpadScope::global, 77}));

} // namespace
} // namespace snpu
