/**
 * @file
 * Unit tests for the deterministic fault injector: trigger semantics
 * (nth, tick_window, probability), fire budgets, occurrence
 * accounting, determinism of the probability stream, and reset.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/fault_injector.hh"

namespace snpu
{
namespace
{

FaultSpec
spec(FaultSite site, FaultTrigger trigger)
{
    FaultSpec s;
    s.site = site;
    s.trigger = trigger;
    return s;
}

TEST(FaultInjector, NthFiresOnExactlyTheNthOccurrence)
{
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::dma_transfer, FaultTrigger::nth);
    s.nth = 3;
    plan.faults.push_back(s);

    FaultInjector inj(plan);
    for (std::uint64_t occ = 1; occ <= 5; ++occ) {
        const bool fired =
            inj.shouldInject(FaultSite::dma_transfer,
                             static_cast<Tick>(occ * 100));
        EXPECT_EQ(fired, occ == 3) << "occurrence " << occ;
    }
    EXPECT_EQ(inj.occurrences(FaultSite::dma_transfer), 5u);
    ASSERT_EQ(inj.fireCount(), 1u);
    EXPECT_EQ(inj.fired()[0].site, FaultSite::dma_transfer);
    EXPECT_EQ(inj.fired()[0].occurrence, 3u);
    EXPECT_EQ(inj.fired()[0].tick, 300u);
}

TEST(FaultInjector, TickWindowFiresOnlyInsideHalfOpenWindow)
{
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::guarder_check,
                       FaultTrigger::tick_window);
    s.window_begin = 100;
    s.window_end = 200;
    s.max_fires = 0; // unlimited
    plan.faults.push_back(s);

    FaultInjector inj(plan);
    EXPECT_FALSE(inj.shouldInject(FaultSite::guarder_check, 50));
    EXPECT_TRUE(inj.shouldInject(FaultSite::guarder_check, 100));
    EXPECT_TRUE(inj.shouldInject(FaultSite::guarder_check, 150));
    EXPECT_TRUE(inj.shouldInject(FaultSite::guarder_check, 199));
    EXPECT_FALSE(inj.shouldInject(FaultSite::guarder_check, 200));
    EXPECT_EQ(inj.fireCount(), 3u);
}

TEST(FaultInjector, TicklessSitesNeverMatchAWindow)
{
    // Sites without a natural timebase (raw scratchpad accesses,
    // monitor dispatch probes) report tick 0; any window starting
    // past 0 must never catch them.
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::spad_bit_flip,
                       FaultTrigger::tick_window);
    s.window_begin = 1;
    s.max_fires = 0;
    plan.faults.push_back(s);

    FaultInjector inj(plan);
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(inj.shouldInject(FaultSite::spad_bit_flip, 0));
    EXPECT_EQ(inj.occurrences(FaultSite::spad_bit_flip), 32u);
    EXPECT_EQ(inj.fireCount(), 0u);
}

TEST(FaultInjector, MaxFiresBudgetCapsASpec)
{
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::noc_head_flit,
                       FaultTrigger::probability);
    s.probability = 1.0; // would fire every time
    s.max_fires = 2;
    plan.faults.push_back(s);

    FaultInjector inj(plan);
    int fires = 0;
    for (int i = 0; i < 8; ++i)
        fires += inj.shouldInject(FaultSite::noc_head_flit, 0) ? 1 : 0;
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(inj.fireCount(), 2u);
}

TEST(FaultInjector, SitesCountIndependently)
{
    FaultPlan plan;
    plan.faults.push_back(spec(FaultSite::dma_transfer,
                               FaultTrigger::nth)); // nth = 1
    FaultInjector inj(plan);

    // Probes of a different site neither fire nor advance the armed
    // site's occurrence count.
    EXPECT_FALSE(inj.shouldInject(FaultSite::monitor_verify, 0));
    EXPECT_FALSE(inj.shouldInject(FaultSite::monitor_alloc, 0));
    EXPECT_EQ(inj.occurrences(FaultSite::dma_transfer), 0u);
    EXPECT_TRUE(inj.shouldInject(FaultSite::dma_transfer, 7));
    EXPECT_EQ(inj.occurrences(FaultSite::monitor_verify), 1u);
    EXPECT_EQ(inj.occurrences(FaultSite::dma_transfer), 1u);
}

TEST(FaultInjector, ProbabilityStreamIsDeterministicPerSeed)
{
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::dma_transfer,
                       FaultTrigger::probability);
    s.probability = 0.5;
    s.max_fires = 0;
    plan.faults.push_back(s);
    plan.seed = 0x1234;

    const auto run = [&plan]() {
        FaultInjector inj(plan);
        std::string pattern;
        for (int i = 0; i < 64; ++i)
            pattern += inj.shouldInject(FaultSite::dma_transfer,
                                        static_cast<Tick>(i))
                           ? '1'
                           : '0';
        return pattern;
    };
    const std::string first = run();
    EXPECT_EQ(first, run());
    // p = 0.5 over 64 draws fires somewhere but not everywhere.
    EXPECT_NE(first.find('1'), std::string::npos);
    EXPECT_NE(first.find('0'), std::string::npos);

    plan.seed = 0x5678;
    EXPECT_NE(first, run()) << "seed must steer the draw stream";
}

TEST(FaultInjector, ResetReplaysThePlanFromScratch)
{
    FaultPlan plan;
    FaultSpec s = spec(FaultSite::guarder_check, FaultTrigger::nth);
    s.nth = 2;
    plan.faults.push_back(s);

    FaultInjector inj(plan);
    EXPECT_FALSE(inj.shouldInject(FaultSite::guarder_check, 10));
    EXPECT_TRUE(inj.shouldInject(FaultSite::guarder_check, 20));
    ASSERT_EQ(inj.fireCount(), 1u);

    inj.reset();
    EXPECT_EQ(inj.occurrences(FaultSite::guarder_check), 0u);
    EXPECT_EQ(inj.fireCount(), 0u);
    // The spec's fire budget is also restored.
    EXPECT_FALSE(inj.shouldInject(FaultSite::guarder_check, 30));
    EXPECT_TRUE(inj.shouldInject(FaultSite::guarder_check, 40));
    EXPECT_EQ(inj.fireCount(), 1u);
}

TEST(FaultInjector, SiteNamesAreUniqueAndComplete)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < fault_site_count; ++i) {
        const char *name =
            faultSiteName(static_cast<FaultSite>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "site " << i;
        names.insert(name);
    }
    EXPECT_EQ(names.size(), fault_site_count);
}

} // namespace
} // namespace snpu
