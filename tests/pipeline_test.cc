/**
 * @file
 * Tests for the multi-core pipeline runner (Fig 16 / Fig 17
 * relationships): direct NoC beats the shared-memory software NoC,
 * and the peephole costs (almost) nothing over the unauthorized NoC.
 */

#include <gtest/gtest.h>

#include "core/systems.hh"
#include "core/task_runner.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(ModelId id = ModelId::resnet)
{
    NpuTask task = NpuTask::fromModel(id);
    task.model = task.model.scaled(8);
    return task;
}

TEST(Pipeline, RunsOnFourCores)
{
    auto soc = buildSoc(SystemKind::snpu);
    TaskRunner runner(*soc);
    PipelineResult res = runner.runPipeline(smallTask(), {0, 1, 2, 3},
                                            NocMode::peephole);
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.transfers, 0u);
    EXPECT_GT(res.noc_bytes, 0u);
}

TEST(Pipeline, DirectNocFasterThanSoftwareNoc)
{
    auto soc1 = buildSoc(SystemKind::snpu);
    PipelineResult direct = TaskRunner(*soc1).runPipeline(
        smallTask(), {0, 1, 2, 3}, NocMode::peephole);
    ASSERT_TRUE(direct.ok()) << direct.error();

    auto soc2 = buildSoc(SystemKind::snpu);
    PipelineResult software = TaskRunner(*soc2).runPipeline(
        smallTask(), {0, 1, 2, 3}, NocMode::software);
    ASSERT_TRUE(software.ok()) << software.error();

    EXPECT_LT(direct.cycles, software.cycles);
}

TEST(Pipeline, PeepholeCostsAlmostNothingOverUnauthorized)
{
    auto soc1 = buildSoc(SystemKind::snpu);
    PipelineResult peephole = TaskRunner(*soc1).runPipeline(
        smallTask(), {0, 1, 2, 3}, NocMode::peephole);
    ASSERT_TRUE(peephole.ok()) << peephole.error();

    auto soc2 = buildSoc(SystemKind::snpu);
    PipelineResult unauth = TaskRunner(*soc2).runPipeline(
        smallTask(), {0, 1, 2, 3}, NocMode::unauthorized);
    ASSERT_TRUE(unauth.ok()) << unauth.error();

    // Within 0.1%: the handshake happens once per channel.
    EXPECT_LE(peephole.cycles, unauth.cycles * 1001 / 1000);
    EXPECT_GE(peephole.cycles, unauth.cycles);
}

TEST(Pipeline, WorksWithTwoCores)
{
    auto soc = buildSoc(SystemKind::snpu);
    PipelineResult res = TaskRunner(*soc).runPipeline(
        smallTask(ModelId::yololite), {0, 1}, NocMode::peephole);
    EXPECT_TRUE(res.ok()) << res.error();
}

TEST(Pipeline, EmptyCoreListRejected)
{
    auto soc = buildSoc(SystemKind::snpu);
    PipelineResult res =
        TaskRunner(*soc).runPipeline(smallTask(), {}, NocMode::peephole);
    EXPECT_FALSE(res.ok());
}

TEST(Pipeline, SecureTaskPipelinesUnderPeephole)
{
    auto soc = buildSoc(SystemKind::snpu);
    NpuTask task = smallTask();
    task.world = World::secure;
    PipelineResult res = TaskRunner(*soc).runPipeline(
        task, {0, 1, 2, 3}, NocMode::peephole);
    EXPECT_TRUE(res.ok()) << res.error();
}

} // namespace
} // namespace snpu
