/**
 * @file
 * Unit tests for the flush engine (the TrustZone-NPU temporal
 * sharing strawman).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/mem_system.hh"
#include "sim/stats.hh"
#include "spad/flush_engine.hh"
#include "spad/scratchpad.hh"

namespace snpu
{
namespace
{

struct FlushFixture : ::testing::Test
{
    FlushFixture()
        : stats("g"), mem(stats),
          spad(stats, [] {
              SpadParams p;
              p.rows = 128;
              p.row_bytes = 16;
              p.mode = IsolationMode::id_based;
              return p;
          }()),
          engine(stats, mem, spad)
    {
        save_area = mem.map().npuArena(World::normal).base;
    }

    stats::Group stats;
    MemSystem mem;
    Scratchpad spad;
    FlushEngine engine;
    Addr save_area = 0;
};

TEST_F(FlushFixture, FlushScrubsRowsAndResetsIds)
{
    std::uint8_t secret[16];
    std::memset(secret, 0x5e, sizeof(secret));
    spad.write(World::secure, 0, secret);
    spad.write(World::secure, 1, secret);

    engine.flush(0, 2, save_area, World::secure);

    // The rows are zeroed and returned to the normal world.
    EXPECT_EQ(spad.idState(0), World::normal);
    EXPECT_EQ(spad.rawRow(0)[0], 0);
    EXPECT_EQ(spad.rawRow(1)[0], 0);
    EXPECT_EQ(engine.flushes(), 1u);
}

TEST_F(FlushFixture, SaveRestoreRoundTripsData)
{
    std::uint8_t pattern[16];
    for (int i = 0; i < 16; ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 3 + 1);
    spad.write(World::secure, 0, pattern);

    Tick t = engine.flush(0, 1, save_area, World::secure);
    EXPECT_EQ(spad.rawRow(0)[0], 0); // scrubbed
    engine.restore(t, 1, save_area, World::secure);
    EXPECT_EQ(std::memcmp(spad.rawRow(0), pattern, 16), 0);
}

TEST_F(FlushFixture, CostScalesWithLiveRows)
{
    const Tick small = engine.flush(0, 8, save_area, World::secure);
    stats::Group stats2("g2");
    MemSystem mem2(stats2);
    SpadParams p;
    p.rows = 128;
    p.row_bytes = 16;
    Scratchpad spad2(stats2, p);
    FlushEngine engine2(stats2, mem2, spad2);
    const Tick large = engine2.flush(0, 96, save_area,
                                     World::secure);
    EXPECT_GT(large, small);
}

TEST_F(FlushFixture, TrafficAccounted)
{
    engine.flush(0, 10, save_area, World::secure);
    EXPECT_EQ(engine.bytesMoved(), 10u * 16);
    Tick t = engine.restore(1000, 10, save_area, World::secure);
    EXPECT_GT(t, 1000u);
    EXPECT_EQ(engine.bytesMoved(), 20u * 16);
}

TEST_F(FlushFixture, LiveRowsClampedToSpadSize)
{
    // Asking to flush more rows than exist must not crash.
    const Tick t = engine.flush(0, 100000, save_area, World::secure);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(engine.bytesMoved(), 128u * 16);
}

TEST(FlushGranularityNames, AllNamed)
{
    EXPECT_STREQ(flushGranularityName(FlushGranularity::none), "none");
    EXPECT_STREQ(flushGranularityName(FlushGranularity::tile), "tile");
    EXPECT_STREQ(flushGranularityName(FlushGranularity::layer),
                 "layer");
    EXPECT_STREQ(flushGranularityName(FlushGranularity::layer5),
                 "layer5");
}

} // namespace
} // namespace snpu
