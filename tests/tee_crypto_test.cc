/**
 * @file
 * Crypto substrate tests against published vectors: SHA-256
 * (FIPS 180-4 examples), AES-128 (FIPS 197 appendix), and
 * HMAC-SHA256 (RFC 4231).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "tee/aes128.hh"
#include "tee/hmac.hh"
#include "tee/sha256.hh"

namespace snpu
{
namespace
{

std::vector<std::uint8_t>
bytes(const char *s)
{
    return std::vector<std::uint8_t>(s, s + std::strlen(s));
}

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(Sha256::toHex(Sha256::hash(nullptr, 0)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    const auto msg = bytes("abc");
    EXPECT_EQ(Sha256::toHex(Sha256::hash(msg)),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    const auto msg = bytes(
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    EXPECT_EQ(Sha256::toHex(Sha256::hash(msg)),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 ctx;
    std::vector<std::uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        ctx.update(chunk.data(), chunk.size());
    EXPECT_EQ(Sha256::toHex(ctx.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShotAcrossRandomSplits)
{
    Rng rng(5);
    std::vector<std::uint8_t> data(4096);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const Digest expected = Sha256::hash(data);

    for (int trial = 0; trial < 20; ++trial) {
        Sha256 ctx;
        std::size_t off = 0;
        while (off < data.size()) {
            const std::size_t n = std::min<std::size_t>(
                1 + rng.below(200), data.size() - off);
            ctx.update(data.data() + off, n);
            off += n;
        }
        EXPECT_TRUE(digestEqual(ctx.finish(), expected));
    }
}

TEST(Sha256, FinishTwicePanics)
{
    Sha256 ctx;
    ctx.finish();
    EXPECT_THROW(ctx.finish(), PanicError);
}

TEST(Aes128, Fips197Vector)
{
    // FIPS 197 Appendix C.1.
    AesKey key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                  0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    std::uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                              0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                              0xcc, 0xdd, 0xee, 0xff};
    const std::uint8_t expected[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};

    Aes128 aes(key);
    aes.encryptBlock(block);
    EXPECT_EQ(std::memcmp(block, expected, 16), 0);

    aes.decryptBlock(block);
    const std::uint8_t plain[16] = {0x00, 0x11, 0x22, 0x33, 0x44,
                                    0x55, 0x66, 0x77, 0x88, 0x99,
                                    0xaa, 0xbb, 0xcc, 0xdd, 0xee,
                                    0xff};
    EXPECT_EQ(std::memcmp(block, plain, 16), 0);
}

TEST(Aes128, Nist800_38aCtrVector)
{
    // NIST SP 800-38A F.5.1 (AES-128 CTR), first block.
    AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    AesBlock iv = {0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7,
                   0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, 0xfe, 0xff};
    const std::vector<std::uint8_t> plaintext = {
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
        0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
    const std::vector<std::uint8_t> expected = {
        0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26,
        0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d, 0xb6, 0xce};

    Aes128 aes(key);
    EXPECT_EQ(aes.ctr(iv, plaintext), expected);
}

TEST(Aes128, CtrRoundTripArbitraryLength)
{
    AesKey key{};
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i * 11);
    AesBlock iv{};
    iv[15] = 1;

    Rng rng(9);
    std::vector<std::uint8_t> msg(1000);
    for (auto &b : msg)
        b = static_cast<std::uint8_t>(rng.next());

    Aes128 aes(key);
    const auto ct = aes.ctr(iv, msg);
    EXPECT_NE(ct, msg);
    EXPECT_EQ(aes.ctr(iv, ct), msg);
}

TEST(Aes128, CtrCounterIncrementCrossesByteBoundary)
{
    AesKey key{};
    AesBlock iv{};
    std::fill(iv.begin(), iv.end(), 0xff); // forces full carry
    Aes128 aes(key);
    std::vector<std::uint8_t> msg(48, 0);
    const auto ct = aes.ctr(iv, msg);
    // Blocks must differ (distinct counters).
    EXPECT_NE(std::memcmp(ct.data(), ct.data() + 16, 16), 0);
    EXPECT_NE(std::memcmp(ct.data() + 16, ct.data() + 32, 16), 0);
}

TEST(Hmac, Rfc4231Case1)
{
    std::vector<std::uint8_t> key(20, 0x0b);
    const auto data = bytes("Hi There");
    EXPECT_EQ(Sha256::toHex(hmacSha256(key, data)),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    const auto key = bytes("Jefe");
    const auto data = bytes("what do ya want for nothing?");
    EXPECT_EQ(Sha256::toHex(hmacSha256(key, data)),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst)
{
    // RFC 4231 case 6: 131-byte key.
    std::vector<std::uint8_t> key(131, 0xaa);
    const auto data =
        bytes("Test Using Larger Than Block-Size Key - Hash Key First");
    EXPECT_EQ(Sha256::toHex(hmacSha256(key, data)),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, EmptyKeyAndEmptyMessage)
{
    // RFC 2104 defines the empty key as K0 = all zeros; the empty
    // message contributes nothing to the inner hash. Regression for
    // the empty-vector data() UB: both operands empty must still
    // produce the published digest, not touch a null pointer.
    const std::vector<std::uint8_t> empty;
    EXPECT_EQ(Sha256::toHex(hmacSha256(empty, empty)),
              "b613679a0814d9ec772f95d778c35fc5"
              "ff1697c493715653c6c712144292c5ad");
}

TEST(Hmac, EmptyKeyNonEmptyMessage)
{
    const std::vector<std::uint8_t> key;
    const auto data = bytes("Hi There");
    EXPECT_EQ(Sha256::toHex(hmacSha256(key, data)),
              "e48411262715c8370cd5e7bf8e82bef5"
              "3bd53712d007f3429351843b77c7bb9b");
}

TEST(Hmac, NonEmptyKeyEmptyMessage)
{
    const auto key = bytes("Jefe");
    const std::vector<std::uint8_t> data;
    EXPECT_EQ(Sha256::toHex(hmacSha256(key, data)),
              "923598ca6d64af2a5dba79dcd021a8a0"
              "fe5c5f557519adaaf0ad532d4506dd30");
}

TEST(Hmac, DigestEqualLastByteSingleBit)
{
    // The XOR fold must reach the final byte: a digest differing
    // from another in exactly one bit of byte 31 is unequal, for
    // every bit position.
    Digest a{};
    for (int bit = 0; bit < 8; ++bit) {
        Digest b{};
        b[31] = static_cast<std::uint8_t>(1u << bit);
        EXPECT_FALSE(digestEqual(a, b)) << "bit " << bit;
        EXPECT_FALSE(digestEqual(b, a)) << "bit " << bit;
    }
}

TEST(Hmac, DigestEqualConstantTimeSemantics)
{
    Digest a{};
    Digest b{};
    EXPECT_TRUE(digestEqual(a, b));
    b[31] = 1;
    EXPECT_FALSE(digestEqual(a, b));
    b[31] = 0;
    b[0] = 1;
    EXPECT_FALSE(digestEqual(a, b));
}

} // namespace
} // namespace snpu
