/**
 * @file
 * Measured-boot attestation: the quote protocol (MAC verification,
 * nonce replay, session-key agreement), the serving admission gate
 * it feeds (clean boot admits and pays the handshake, a tampered
 * boot stage is denied with StatusCode::verification_failed,
 * injected handshake timeouts retry), and the fleet controller's
 * re-attestation of migration targets.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/systems.hh"
#include "fleet/fleet_controller.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/fault_injector.hh"
#include "sim/hashing.hh"
#include "sim/random.hh"
#include "tee/attestation.hh"
#include "tee/hmac.hh"
#include "tee/secure_boot.hh"
#include "workload/model_zoo.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(World world = World::secure)
{
    NpuTask task = NpuTask::fromModel(ModelId::mobilenet, world);
    task.model = task.model.scaled(64);
    return task;
}

std::vector<Tick>
everyN(Tick gap, std::uint32_t count, Tick start = 0)
{
    std::vector<Tick> arrivals(count);
    for (std::uint32_t i = 0; i < count; ++i)
        arrivals[i] = start + gap * i;
    return arrivals;
}

TenantSpec
tenant(const std::string &name, World world,
       std::vector<Tick> arrivals)
{
    TenantSpec spec;
    spec.name = name;
    spec.task = smallTask(world);
    spec.queue_capacity = 32;
    spec.arrivals = std::move(arrivals);
    return spec;
}

Digest
someMeasurement()
{
    Digest mr{};
    for (std::size_t i = 0; i < mr.size(); ++i)
        mr[i] = static_cast<std::uint8_t>(i * 3 + 1);
    return mr;
}

// --- quote protocol ------------------------------------------------

TEST(Attest, QuoteVerifiesAndDerivesSessionKey)
{
    const auto key = deriveAttestKey(monitorSealedKey());
    const Digest mr = someMeasurement();
    const AttestNonce nonce = attestNonceFromSeed(42);

    AttestVerifier verifier(key, mr);
    const Status st = verifier.verify(makeQuote(key, mr, nonce),
                                      nonce);
    ASSERT_TRUE(st.isOk()) << st.toString();
    // Both sides derive the same per-session key from the
    // handshake transcript.
    EXPECT_TRUE(digestEqual(verifier.sessionKey(),
                            attestSessionKey(key, mr, nonce)));
}

TEST(Attest, NonceReplayRejected)
{
    const auto key = deriveAttestKey(monitorSealedKey());
    const Digest mr = someMeasurement();
    AttestVerifier verifier(key, mr);

    const AttestNonce nonce = attestNonceFromSeed(7);
    ASSERT_TRUE(
        verifier.verify(makeQuote(key, mr, nonce), nonce).isOk());
    // Replaying the identical (valid!) quote must fail: the nonce
    // was consumed.
    const Status replay =
        verifier.verify(makeQuote(key, mr, nonce), nonce);
    EXPECT_FALSE(replay.isOk());
    EXPECT_EQ(replay.code(), StatusCode::verification_failed);
    // A fresh nonce still verifies afterwards.
    const AttestNonce fresh = attestNonceFromSeed(8);
    EXPECT_TRUE(
        verifier.verify(makeQuote(key, mr, fresh), fresh).isOk());
}

TEST(Attest, TamperedQuoteRejected)
{
    const auto key = deriveAttestKey(monitorSealedKey());
    const Digest mr = someMeasurement();
    const AttestNonce nonce = attestNonceFromSeed(9);
    AttestVerifier verifier(key, mr);

    // Flipped MAC bit.
    AttestQuote quote = makeQuote(key, mr, nonce);
    quote.mac[31] ^= 1;
    Status st = verifier.verify(quote, nonce);
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::verification_failed);

    // Wrong nonce echo (a quote signed for some other challenge).
    const AttestNonce other = attestNonceFromSeed(10);
    st = verifier.verify(makeQuote(key, mr, other), nonce);
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::verification_failed);

    // Honestly signed quote over a diverged measurement.
    Digest bad_mr = mr;
    bad_mr[0] ^= 1;
    const AttestNonce n2 = attestNonceFromSeed(11);
    st = verifier.verify(makeQuote(key, bad_mr, n2), n2);
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::verification_failed);
}

TEST(Attest, HandshakeCyclesScaleWithModelBytes)
{
    AttestTiming timing;
    const Tick bare = timing.handshakeCycles(0);
    EXPECT_GT(bare, 0u);
    EXPECT_GT(timing.handshakeCycles(1u << 20), bare);
}

// --- serving admission ---------------------------------------------

TEST(Attest, CleanBootAdmitsAndChargesHandshake)
{
    auto soc = buildSoc(SystemKind::snpu);
    ASSERT_TRUE(soc->bootReport().ok);

    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.attestation = true;
    cfg.record_requests = true;
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(
        {tenant("sec", World::secure, everyN(50'000, 4)),
         tenant("pub", World::normal, everyN(50'000, 4))});
    ASSERT_TRUE(res.ok()) << res.error();

    const TenantReport &sec = res.tenants[0];
    EXPECT_EQ(sec.completed, 4u);
    EXPECT_TRUE(sec.attested);
    EXPECT_EQ(sec.attest_handshakes, 1u);
    EXPECT_EQ(sec.attest_denied, 0u);
    EXPECT_GT(sec.attest_cycles, 0u);

    // Normal-world tenants never enter the handshake.
    const TenantReport &pub = res.tenants[1];
    EXPECT_EQ(pub.completed, 4u);
    EXPECT_FALSE(pub.attested);
    EXPECT_EQ(pub.attest_handshakes, 0u);
    EXPECT_EQ(pub.attest_cycles, 0u);

    EXPECT_EQ(res.attest_overhead, sec.attest_cycles);
}

TEST(Attest, CorruptBootDeniedAtAdmission)
{
    SocParams params = makeSystem(SystemKind::snpu);
    params.boot_corrupt_stage = "trusted-firmware";
    Soc soc(params);
    EXPECT_FALSE(soc.bootReport().ok);
    EXPECT_EQ(soc.bootReport().failed_stage, "trusted-firmware");

    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.attestation = true;
    cfg.record_requests = true;
    SnpuServer server(soc, cfg);
    ServeResult res = server.serve(
        {tenant("sec", World::secure, everyN(50'000, 4))});
    ASSERT_TRUE(res.ok()) << res.error();

    const TenantReport &rep = res.tenants[0];
    EXPECT_EQ(rep.completed, 0u);
    EXPECT_EQ(rep.rejected, 4u);
    EXPECT_EQ(rep.attest_denied, 4u);
    EXPECT_FALSE(rep.attested);
    EXPECT_EQ(rep.attest_cycles, 0u);
    ASSERT_EQ(rep.requests.size(), 4u);
    for (const RequestOutcome &o : rep.requests) {
        EXPECT_TRUE(o.rejected);
        EXPECT_EQ(o.final, StatusCode::verification_failed);
    }
}

TEST(Attest, AttestationOffIgnoresCorruptBoot)
{
    // Attestation is the enforcement point: with it off, the
    // tampered platform serves normally (and pays nothing), which
    // is exactly the gap the admission gate closes.
    SocParams params = makeSystem(SystemKind::snpu);
    params.boot_corrupt_stage = "teeos+npu-monitor";
    Soc soc(params);

    ServerConfig cfg;
    cfg.num_cores = 2;
    SnpuServer server(soc, cfg);
    ServeResult res = server.serve(
        {tenant("sec", World::secure, everyN(50'000, 4))});
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.tenants[0].completed, 4u);
    EXPECT_EQ(res.attest_overhead, 0u);
}

TEST(Attest, InjectedHandshakeTimeoutRetriesThenEstablishes)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.attestation = true;
    cfg.max_retries = 2;
    cfg.fault_injection = true;
    FaultSpec spec;
    spec.site = FaultSite::attest;
    spec.trigger = FaultTrigger::nth;
    spec.nth = 1;
    spec.max_fires = 1;
    cfg.fault_plan.faults = {spec};
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(
        {tenant("sec", World::secure, everyN(50'000, 4))});
    ASSERT_TRUE(res.ok()) << res.error();

    // The first quote exchange timed out (injected); the retry
    // re-paid the handshake and established the session.
    const TenantReport &rep = res.tenants[0];
    EXPECT_EQ(rep.completed, 4u);
    EXPECT_TRUE(rep.attested);
    EXPECT_EQ(rep.attest_handshakes, 2u);
    EXPECT_GE(rep.retries, 1u);
    EXPECT_GE(rep.faults_observed, 1u);
}

TEST(Attest, ServeIsDeterministic)
{
    const auto run = [] {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig cfg;
        cfg.num_cores = 2;
        cfg.attestation = true;
        cfg.latency_hist_max = 4.0e7;
        SnpuServer server(*soc, cfg);
        return server.serve(
            {tenant("a", World::secure, everyN(40'000, 6)),
             tenant("b", World::secure, everyN(55'000, 6))});
    };
    const ServeResult x = run();
    const ServeResult y = run();
    ASSERT_TRUE(x.ok() && y.ok());
    EXPECT_EQ(x.makespan, y.makespan);
    EXPECT_EQ(x.attest_overhead, y.attest_overhead);
    for (std::size_t t = 0; t < x.tenants.size(); ++t) {
        EXPECT_EQ(x.tenants[t].completed, y.tenants[t].completed);
        EXPECT_EQ(x.tenants[t].p99, y.tenants[t].p99);
        EXPECT_EQ(x.tenants[t].attest_cycles,
                  y.tenants[t].attest_cycles);
    }
}

// --- fleet re-attestation ------------------------------------------

FaultSpec
probSpec(FaultSite site, double p)
{
    FaultSpec spec;
    spec.site = site;
    spec.trigger = FaultTrigger::probability;
    spec.probability = p;
    spec.max_fires = 0;
    return spec;
}

/** First heartbeat tick a crash-only plan fires for SoC @p n. */
Tick
firstFire(double p, std::uint64_t fleet_seed, std::uint32_t n,
          Tick hb, Tick horizon)
{
    FaultPlan plan;
    plan.faults = {probSpec(FaultSite::soc_crash, p)};
    plan.seed = hashMix(fleet_seed, std::uint64_t(n) + 1);
    FaultInjector inj(plan);
    for (Tick t = hb; t <= horizon; t += hb) {
        if (inj.shouldInject(FaultSite::soc_crash, t))
            return t;
    }
    return 0;
}

TEST(Attest, FleetFailoverReattestsTarget)
{
    const Tick hb = 1'000;
    const Tick horizon = 300'000;
    const double p = 1.0 / 300.0;

    // Choreograph: SoC 0 dies while its tenant still has pending
    // work; SoC 1 survives to take the migrants.
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200'000 && !seed; ++s) {
        const Tick f0 = firstFire(p, s, 0, hb, horizon);
        const Tick f1 = firstFire(p, s, 1, hb, horizon);
        if (f0 >= 30'000 && f0 <= 150'000 && f1 == 0)
            seed = s;
    }
    ASSERT_NE(seed, 0u) << "no seed kills only SoC 0";

    FleetConfig fc;
    fc.num_socs = 2;
    fc.soc = makeSystem(SystemKind::snpu);
    fc.server.num_cores = 2;
    fc.server.attestation = true;
    fc.server.latency_hist_max = 4.0e7;
    fc.heartbeat_interval = hb;
    fc.horizon = horizon;
    fc.fault_injection = true;
    fc.fault_plan.seed = seed;
    fc.fault_plan.faults = {probSpec(FaultSite::soc_crash, p)};

    std::vector<FleetTenantSpec> tenants(2);
    tenants[0].spec = tenant("t0", World::normal, everyN(20'000, 8));
    tenants[0].home = 0;
    tenants[1].spec = tenant("t1", World::normal, everyN(20'000, 8));
    tenants[1].home = 1;

    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.evictions, 1u);
    ASSERT_GE(res.migrations, 1u);
    // Every completed migration re-attested its target exactly once
    // (no attest faults armed, so first attempts succeed).
    EXPECT_EQ(res.re_attests, res.migrations);
    EXPECT_GT(res.migration_cycles, 0u);

    // Attestation off: the same choreography migrates without any
    // re-attestation.
    FleetConfig off = fc;
    off.server.attestation = false;
    FleetController off_fleet(off);
    FleetResult off_res = off_fleet.run(tenants);
    ASSERT_TRUE(off_res.ok()) << off_res.error();
    EXPECT_GE(off_res.migrations, 1u);
    EXPECT_EQ(off_res.re_attests, 0u);

    // A fleet booted from tampered firmware cannot pass the
    // pre-migration platform check: every handshake attempt fails
    // and no migration completes.
    FleetConfig bad = fc;
    bad.soc.boot_corrupt_stage = "teeos+npu-monitor";
    FleetController bad_fleet(bad);
    FleetResult bad_res = bad_fleet.run(tenants);
    ASSERT_TRUE(bad_res.ok()) << bad_res.error();
    EXPECT_EQ(bad_res.migrations, 0u);
    EXPECT_GT(bad_res.migration_failures, 0u);
    EXPECT_EQ(bad_res.re_attests, 0u);
    EXPECT_GT(bad_res.failed, 0u);
}

} // namespace
} // namespace snpu
