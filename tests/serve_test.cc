/**
 * @file
 * Tests for the serving stack: the generalized N-core scheduler and
 * the SnpuServer engine layered on top of it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/scheduler.hh"
#include "core/systems.hh"
#include "serve/arrivals.hh"
#include "serve/core_scheduler.hh"
#include "serve/server.hh"
#include "sim/random.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(ModelId id, World world = World::normal, int priority = 0)
{
    NpuTask task = NpuTask::fromModel(id, world, priority);
    task.model = task.model.scaled(64);
    return task;
}

// --- N-core scheduler ----------------------------------------------

/**
 * With N = 1 the generalized scheduler must reproduce the
 * TimeSharedScheduler bit for bit under every policy: TSS is now a
 * thin adapter over it, so the two runs below take the same path —
 * but through two independently built SoCs, so any hidden state
 * would break the equality.
 */
TEST(NCoreScheduler, SingleCoreReproducesTimeShared)
{
    SchedScenario scen;
    scen.background = smallTask(ModelId::resnet, World::normal, 0);
    scen.periodic = smallTask(ModelId::mobilenet, World::normal, 5);
    scen.period = 100000;
    scen.instances = 4;

    for (SchedPolicy policy :
         {SchedPolicy::flush_fine, SchedPolicy::flush_coarse,
          SchedPolicy::partition, SchedPolicy::id_based}) {
        auto tss_soc = buildSoc(SystemKind::snpu);
        TimeSharedScheduler tss(*tss_soc, policy, 3);
        SchedResult ref = tss.run(scen);
        ASSERT_TRUE(ref.ok()) << ref.error();

        ExecStream background;
        background.task = scen.background;
        background.arrivals = {0};
        background.pinned_core = 0;
        ExecStream periodic;
        periodic.task = scen.periodic;
        for (std::uint32_t i = 0; i < scen.instances; ++i)
            periodic.arrivals.push_back(static_cast<Tick>(i) *
                                        scen.period);
        periodic.pinned_core = 0;

        auto n_soc = buildSoc(SystemKind::snpu);
        NCoreScheduler sched(*n_soc, policy, 1, 3);
        NSchedResult res = sched.run({background, periodic});
        ASSERT_TRUE(res.ok()) << res.error();

        EXPECT_EQ(res.makespan, ref.makespan)
            << schedPolicyName(policy);
        EXPECT_EQ(res.flush_overhead, ref.flush_overhead)
            << schedPolicyName(policy);
        EXPECT_EQ(res.streams[0].completion, ref.background_completion)
            << schedPolicyName(policy);
        EXPECT_EQ(res.streams[1].worst_latency, ref.worst_latency)
            << schedPolicyName(policy);
        EXPECT_DOUBLE_EQ(res.streams[1].mean_latency,
                         ref.mean_latency)
            << schedPolicyName(policy);
    }
}

std::vector<ExecStream>
mixedPriorityStreams()
{
    // Six streams, three priority levels, staggered arrivals.
    const ModelId models[] = {ModelId::mobilenet, ModelId::yololite,
                              ModelId::resnet,    ModelId::mobilenet,
                              ModelId::yololite,  ModelId::resnet};
    std::vector<ExecStream> streams;
    for (std::uint32_t s = 0; s < 6; ++s) {
        ExecStream stream;
        stream.task = smallTask(models[s], World::normal,
                                static_cast<int>(s % 3));
        stream.arrivals = {static_cast<Tick>(s) * 20000,
                           static_cast<Tick>(s) * 20000 + 400000};
        streams.push_back(stream);
    }
    return streams;
}

/** More tiles never hurt, and low-priority streams still finish. */
TEST(NCoreScheduler, FourCoresNoStarvationAndFaster)
{
    std::vector<Tick> makespans;
    for (std::uint32_t cores : {1u, 4u}) {
        auto soc = buildSoc(SystemKind::snpu);
        NCoreScheduler sched(*soc, SchedPolicy::id_based, cores);
        NSchedResult res = sched.run(mixedPriorityStreams());
        ASSERT_TRUE(res.ok()) << res.error();
        for (const StreamOutcome &out : res.streams) {
            EXPECT_EQ(out.completed, 2u); // every request finished
            EXPECT_EQ(out.rejected, 0u);
            EXPECT_GT(out.completion, 0u);
        }
        EXPECT_GT(res.utilization, 0.0);
        EXPECT_LE(res.utilization, 1.0);
        makespans.push_back(res.makespan);
    }
    EXPECT_LE(makespans[1], makespans[0]);
}

/** Same inputs, fresh SoCs: the schedule must be reproducible. */
TEST(NCoreScheduler, DeterministicAcrossRuns)
{
    std::vector<Tick> makespans;
    for (int rep = 0; rep < 2; ++rep) {
        auto soc = buildSoc(SystemKind::snpu);
        NCoreScheduler sched(*soc, SchedPolicy::flush_fine, 4);
        NSchedResult res = sched.run(mixedPriorityStreams());
        ASSERT_TRUE(res.ok()) << res.error();
        makespans.push_back(res.makespan);
    }
    EXPECT_EQ(makespans[0], makespans[1]);
}

// --- serving engine ------------------------------------------------

std::vector<TenantSpec>
makeTenants(std::uint32_t requests, std::uint32_t capacity,
            std::uint64_t seed)
{
    std::vector<TenantSpec> tenants;
    const ModelId models[] = {ModelId::mobilenet, ModelId::yololite};
    const World worlds[] = {World::secure, World::normal};
    for (std::uint32_t t = 0; t < 2; ++t) {
        TenantSpec spec;
        spec.name = std::string(modelName(models[t])) + "_" +
                    std::to_string(t);
        spec.task = smallTask(models[t], worlds[t]);
        spec.queue_capacity = capacity;
        Rng rng(seed + t);
        spec.arrivals = poissonArrivals(rng, 200000.0, requests);
        tenants.push_back(spec);
    }
    return tenants;
}

TEST(SnpuServer, ServesAllTenantsAndReportsTails)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(6, 8, 1));
    ASSERT_TRUE(res.ok()) << res.error();
    ASSERT_EQ(res.tenants.size(), 2u);
    for (const TenantReport &rep : res.tenants) {
        EXPECT_EQ(rep.completed, 6u);
        EXPECT_EQ(rep.rejected, 0u);
        EXPECT_GT(rep.throughput, 0.0);
        EXPECT_GT(rep.p50, 0u);
        EXPECT_LE(rep.p50, rep.p95);
        EXPECT_LE(rep.p95, rep.p99);
        EXPECT_LE(rep.p99 / 2, rep.worst_latency); // same order
        EXPECT_GT(rep.peak_queue_depth, 0u);
    }
    EXPECT_GT(res.makespan, 0u);
    EXPECT_EQ(res.cycles, res.makespan);
}

TEST(SnpuServer, SecureTenantPaysTheMonitorNormalDoesNot)
{
    auto soc = buildSoc(SystemKind::snpu);
    SnpuServer server(*soc);
    ServeResult res = server.serve(makeTenants(4, 8, 2));
    ASSERT_TRUE(res.ok()) << res.error();
    const TenantReport &secure = res.tenants[0];
    const TenantReport &normal = res.tenants[1];
    EXPECT_GT(secure.monitor_cycles, 0u);
    EXPECT_EQ(normal.monitor_cycles, 0u);
    EXPECT_EQ(res.monitor_overhead, secure.monitor_cycles);
}

TEST(SnpuServer, DeterministicForFixedSeed)
{
    std::vector<std::string> dumps;
    for (int rep = 0; rep < 2; ++rep) {
        auto soc = buildSoc(SystemKind::snpu);
        ServerConfig cfg;
        cfg.num_cores = 2;
        SnpuServer server(*soc, cfg);
        ServeResult res = server.serve(makeTenants(6, 8, 3));
        ASSERT_TRUE(res.ok()) << res.error();
        std::ostringstream os;
        os << res.makespan << " " << res.flush_overhead << " "
           << res.monitor_overhead << "\n";
        for (const TenantReport &rep : res.tenants)
            os << rep.name << " " << rep.completed << " "
               << rep.rejected << " " << rep.p50 << " " << rep.p95
               << " " << rep.p99 << " " << rep.worst_latency << " "
               << rep.monitor_cycles << "\n";
        dumps.push_back(os.str());
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(SnpuServer, BoundedQueueRejectsBursts)
{
    auto soc = buildSoc(SystemKind::snpu);
    SnpuServer server(*soc);

    // Every request of a 12-deep burst lands at once against a
    // single-slot queue: all but the one in service must bounce.
    std::vector<TenantSpec> tenants = makeTenants(4, 8, 4);
    tenants[1].queue_capacity = 1;
    tenants[1].arrivals.assign(12, Tick{0});

    ServeResult res = server.serve(tenants);
    ASSERT_TRUE(res.ok()) << res.error();
    const TenantReport &bursty = res.tenants[1];
    EXPECT_GT(bursty.rejected, 0u);
    EXPECT_EQ(bursty.completed + bursty.rejected, 12u);
    EXPECT_EQ(bursty.peak_queue_depth, 1u);
    // The well-behaved tenant is unaffected by its neighbor's drops.
    EXPECT_EQ(res.tenants[0].completed, 4u);
    EXPECT_EQ(res.tenants[0].rejected, 0u);
}

TEST(SnpuServer, ValidatesItsInputs)
{
    {
        auto soc = buildSoc(SystemKind::snpu);
        SnpuServer server(*soc);
        ServeResult res = server.serve({});
        EXPECT_FALSE(res.ok());
        EXPECT_EQ(res.code(), StatusCode::invalid_argument);
    }
    {
        // Secure tenants need the NPU Monitor.
        auto soc = buildSoc(SystemKind::normal_npu);
        SnpuServer server(*soc);
        ServeResult res = server.serve(makeTenants(2, 8, 5));
        EXPECT_FALSE(res.ok());
        EXPECT_EQ(res.code(), StatusCode::invalid_argument);
    }
    {
        // One serving window per instance.
        auto soc = buildSoc(SystemKind::snpu);
        SnpuServer server(*soc);
        ASSERT_TRUE(server.serve(makeTenants(2, 8, 6)).ok());
        ServeResult again = server.serve(makeTenants(2, 8, 6));
        EXPECT_FALSE(again.ok());
        EXPECT_EQ(again.code(), StatusCode::invalid_argument);
    }
}

TEST(Arrivals, GeneratorsAreWellFormed)
{
    Rng rng(9);
    const std::vector<Tick> poisson =
        poissonArrivals(rng, 1000.0, 64, 500);
    ASSERT_EQ(poisson.size(), 64u);
    EXPECT_GE(poisson.front(), 500u);
    for (std::size_t i = 1; i < poisson.size(); ++i)
        EXPECT_GE(poisson[i], poisson[i - 1]); // ascending

    const std::vector<Tick> periodic = periodicArrivals(250, 4, 100);
    ASSERT_EQ(periodic.size(), 4u);
    EXPECT_EQ(periodic[0], 100u);
    EXPECT_EQ(periodic[3], 850u);

    // load = tenants x service / (gap x cores), inverted.
    EXPECT_DOUBLE_EQ(meanGapForLoad(0.5, 4, 2, 1000.0), 4000.0);
}

} // namespace
} // namespace snpu
