/**
 * @file
 * Tests for the model zoo and the tiling compiler's planning logic —
 * in particular the capacity behaviour that drives Fig 15.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "workload/compiler.hh"
#include "workload/mapping.hh"
#include "workload/model_zoo.hh"

namespace snpu
{
namespace
{

TEST(ModelZoo, AllModelsBuild)
{
    for (ModelId id : allModels()) {
        const ModelSpec model = makeModel(id);
        EXPECT_FALSE(model.layers.empty()) << modelName(id);
        EXPECT_GT(model.macs(), 0u) << modelName(id);
        for (const auto &layer : model.layers) {
            EXPECT_GT(layer.m, 0u);
            EXPECT_GT(layer.n, 0u);
            EXPECT_GT(layer.k, 0u);
        }
    }
}

TEST(ModelZoo, NameRoundTrip)
{
    for (ModelId id : allModels())
        EXPECT_EQ(modelByName(modelName(id)), id);
    EXPECT_THROW(modelByName("vgg"), FatalError);
}

TEST(ModelZoo, WeightFootprintsDiffer)
{
    // The weight-heavy nets must dominate the streaming nets: this
    // asymmetry is what Fig 15 exploits.
    const auto alexnet = makeModel(ModelId::alexnet);
    const auto yolo = makeModel(ModelId::yololite);
    EXPECT_GT(alexnet.weightBytes(), 10 * yolo.weightBytes());
}

TEST(ModelZoo, ScaledReducesWork)
{
    const auto full = makeModel(ModelId::resnet);
    const auto half = full.scaled(2);
    EXPECT_LT(half.macs(), full.macs());
    EXPECT_EQ(half.layers.size(), full.layers.size());
    // K and N (reuse structure) unchanged.
    EXPECT_EQ(half.layers[0].k, full.layers[0].k);
    EXPECT_EQ(half.layers[0].n, full.layers[0].n);
}

TEST(Compiler, PlanBasics)
{
    TilingCompiler compiler;
    LayerSpec layer;
    layer.m = 256;
    layer.n = 64;
    layer.k = 128;
    const LayerPlan plan = compiler.plan(layer);
    EXPECT_EQ(plan.k_tiles, 8u);
    EXPECT_EQ(plan.n_tiles, 4u);
    EXPECT_GE(plan.tm, 16u);
    EXPECT_EQ(plan.m_chunks,
              (layer.m + plan.tm - 1) / plan.tm);
    EXPECT_GT(plan.dma_bytes, 0u);
}

TEST(Compiler, SmallerScratchpadMeansMoreWeightTraffic)
{
    LayerSpec fc;
    fc.m = 128;
    fc.n = 4096;
    fc.k = 9216; // AlexNet fc6
    CompilerParams big;
    big.spad_rows = 16384;
    CompilerParams small;
    small.spad_rows = 4096;

    const LayerPlan big_plan = TilingCompiler(big).plan(fc);
    const LayerPlan small_plan = TilingCompiler(small).plan(fc);
    EXPECT_GT(small_plan.m_chunks, big_plan.m_chunks);
    EXPECT_GT(small_plan.dma_bytes, big_plan.dma_bytes);
}

TEST(Compiler, TinyWeightsBecomeResident)
{
    LayerSpec conv;
    conv.m = 12544;
    conv.n = 16;
    conv.k = 27; // YOLO-lite conv1
    TilingCompiler compiler;
    const LayerPlan plan = compiler.plan(conv);
    EXPECT_TRUE(plan.weights_resident);
    // Resident weights stream exactly once.
    EXPECT_EQ(plan.dma_bytes,
              conv.aBytes() + conv.cBytes() + conv.wBytes());
}

TEST(Compiler, VerySmallSpadDisablesDoubleBuffering)
{
    LayerSpec layer;
    layer.m = 256;
    layer.n = 1024;
    layer.k = 2048;
    CompilerParams tiny;
    tiny.spad_rows = 300;
    const LayerPlan plan = TilingCompiler(tiny).plan(layer);
    EXPECT_FALSE(plan.double_buffered);
}

TEST(Compiler, ProgramStructure)
{
    TilingCompiler compiler;
    ModelSpec model;
    model.name = "tiny";
    LayerSpec l1;
    l1.name = "l1";
    l1.m = 64;
    l1.n = 32;
    l1.k = 48;
    LayerSpec l2 = l1;
    l2.name = "l2";
    l2.k = 32;
    model.layers = {l1, l2};

    NpuProgram prog = compiler.compileModel(model, 0x1000'0000);
    EXPECT_FALSE(prog.code.empty());
    EXPECT_EQ(prog.layer_ends.size(), 2u);
    EXPECT_FALSE(prog.tile_ends.empty());
    EXPECT_EQ(prog.ideal_macs, l1.macs() + l2.macs());
    EXPECT_GT(prog.spad_rows_used, 0u);
    EXPECT_GT(prog.tile_live_rows, 0u);
    // Boundaries are sorted and in range.
    for (std::size_t i = 1; i < prog.tile_ends.size(); ++i)
        EXPECT_LT(prog.tile_ends[i - 1], prog.tile_ends[i]);
    EXPECT_LT(prog.layer_ends.back(), prog.code.size());

    // Instruction mix sanity: computes and mvins present, every
    // compute preceded by a preload for its weights.
    bool saw_compute = false;
    bool saw_mvin = false;
    for (const Instr &in : prog.code) {
        saw_compute |= in.op == Opcode::compute;
        saw_mvin |= in.op == Opcode::mvin;
    }
    EXPECT_TRUE(saw_compute);
    EXPECT_TRUE(saw_mvin);
}

TEST(Compiler, SkipFlagsRemoveBoundaryTraffic)
{
    TilingCompiler compiler;
    ModelSpec model;
    LayerSpec layer;
    layer.name = "l";
    layer.m = 64;
    layer.n = 32;
    layer.k = 32;
    model.layers = {layer};

    NpuProgram full = compiler.compileModel(model, 0x1000'0000);
    CompileOptions opts;
    opts.skip_first_a_load = true;
    opts.skip_last_c_store = true;
    NpuProgram skipped =
        compiler.compileModel(model, 0x1000'0000, nullptr, opts);

    auto count = [](const NpuProgram &p, Opcode op) {
        std::size_t n = 0;
        for (const Instr &in : p.code)
            n += in.op == op;
        return n;
    };
    EXPECT_GT(count(full, Opcode::mvin), count(skipped, Opcode::mvin));
    EXPECT_GT(count(full, Opcode::mvout),
              count(skipped, Opcode::mvout));
    EXPECT_EQ(count(skipped, Opcode::mvout), 0u);
}

TEST(Compiler, SpadUsageNeverExceedsBudget)
{
    for (ModelId id : allModels()) {
        for (std::uint32_t rows : {16384u, 8192u, 4096u}) {
            CompilerParams cp;
            cp.spad_rows = rows;
            TilingCompiler compiler(cp);
            NpuProgram prog =
                compiler.compileModel(makeModel(id).scaled(8),
                                      0x1000'0000);
            EXPECT_LE(prog.spad_rows_used, rows)
                << modelName(id) << " rows=" << rows;
        }
    }
}

TEST(Mapping, BalancedStagesCoverModel)
{
    const ModelSpec model = makeModel(ModelId::resnet);
    const auto stages = balanceStages(model, 4);
    ASSERT_EQ(stages.size(), 4u);
    std::size_t covered = 0;
    std::uint64_t macs = 0;
    for (const auto &stage : stages) {
        EXPECT_EQ(stage.first_layer, covered);
        covered += stage.layer_count;
        macs += stage.macs;
        EXPECT_GT(stage.layer_count, 0u);
    }
    EXPECT_EQ(covered, model.layers.size());
    EXPECT_EQ(macs, model.macs());
}

TEST(Mapping, StagesAreRoughlyBalanced)
{
    const ModelSpec model = makeModel(ModelId::bert);
    const auto stages = balanceStages(model, 3);
    const std::uint64_t target = model.macs() / 3;
    for (const auto &stage : stages)
        EXPECT_LT(stage.macs, 2 * target);
}

TEST(Mapping, MoreStagesThanLayersClamped)
{
    ModelSpec model;
    LayerSpec layer;
    layer.m = layer.n = layer.k = 16;
    model.layers = {layer, layer};
    const auto stages = balanceStages(model, 8);
    EXPECT_EQ(stages.size(), 2u);
}

TEST(Mapping, StageModelExtractsLayers)
{
    const ModelSpec model = makeModel(ModelId::alexnet);
    const auto stages = balanceStages(model, 2);
    const ModelSpec sub = stageModel(model, stages[1]);
    EXPECT_EQ(sub.layers.size(), stages[1].layer_count);
    EXPECT_EQ(sub.layers[0].name,
              model.layers[stages[1].first_layer].name);
}

} // namespace
} // namespace snpu
