/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace snpu
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeLoGreaterThanHiPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.range(5, 4), PanicError);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean should be near 0.5.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

class RngBucketTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBucketTest, BelowIsRoughlyUniform)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 31 + 1);
    std::vector<int> buckets(bound, 0);
    const int samples = 4000 * static_cast<int>(bound);
    for (int i = 0; i < samples; ++i)
        ++buckets[rng.below(bound)];
    const double expected = static_cast<double>(samples) / bound;
    for (std::uint64_t b = 0; b < bound; ++b) {
        EXPECT_NEAR(buckets[b], expected, expected * 0.15)
            << "bucket " << b << " bound " << bound;
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBucketTest,
                         ::testing::Values(2, 3, 5, 7, 16));

} // namespace
} // namespace snpu
