/**
 * @file
 * Unit tests for the configuration store.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

TEST(Config, TypedRoundTrips)
{
    Config cfg;
    cfg.setInt("tiles", 10);
    cfg.setDouble("bw", 16.5);
    cfg.setBool("secure", true);
    cfg.set("name", "snpu");

    EXPECT_EQ(cfg.getInt("tiles"), 10);
    EXPECT_DOUBLE_EQ(cfg.getDouble("bw"), 16.5);
    EXPECT_TRUE(cfg.getBool("secure"));
    EXPECT_EQ(cfg.getString("name"), "snpu");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(cfg.getBool("missing", false));
    EXPECT_EQ(cfg.getString("missing", "x"), "x");
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, ParseArg)
{
    Config cfg;
    cfg.parseArg("model=bert");
    cfg.parseArg("iotlb=16");
    EXPECT_EQ(cfg.getString("model"), "bert");
    EXPECT_EQ(cfg.getInt("iotlb"), 16);
}

TEST(Config, ParseArgRejectsMalformed)
{
    Config cfg;
    EXPECT_THROW(cfg.parseArg("novalue"), FatalError);
    EXPECT_THROW(cfg.parseArg("=x"), FatalError);
}

TEST(Config, MalformedNumbersAreFatal)
{
    Config cfg;
    cfg.set("n", "abc");
    EXPECT_THROW(cfg.getInt("n"), FatalError);
    EXPECT_THROW(cfg.getDouble("n"), FatalError);
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.getBool("b"), FatalError);
}

TEST(Config, HexIntegersParse)
{
    Config cfg;
    cfg.set("addr", "0x1000");
    EXPECT_EQ(cfg.getInt("addr"), 0x1000);
    cfg.set("upper", "0X10");
    EXPECT_EQ(cfg.getInt("upper"), 16);
}

TEST(Config, LeadingZeroIsDecimalNotOctal)
{
    // "scale=010" means ten; a base-detecting strtol would silently
    // read it as octal 8.
    Config cfg;
    cfg.set("n", "010");
    EXPECT_EQ(cfg.getInt("n"), 10);
    cfg.set("z", "0");
    EXPECT_EQ(cfg.getInt("z"), 0);
}

TEST(Config, NegativeIntegersParse)
{
    Config cfg;
    cfg.set("n", "-8");
    EXPECT_EQ(cfg.getInt("n"), -8);
    cfg.set("h", "-0x10");
    EXPECT_EQ(cfg.getInt("h"), -16);
}

TEST(Config, BoolSpellings)
{
    Config cfg;
    cfg.set("a", "1");
    cfg.set("b", "yes");
    cfg.set("c", "0");
    cfg.set("d", "no");
    EXPECT_TRUE(cfg.getBool("a"));
    EXPECT_TRUE(cfg.getBool("b"));
    EXPECT_FALSE(cfg.getBool("c"));
    EXPECT_FALSE(cfg.getBool("d"));
}

} // namespace
} // namespace snpu
