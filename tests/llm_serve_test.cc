/**
 * @file
 * LLM decode serving: transformer decoder workloads (prefill /
 * decode phases, KV paging), continuous batching on the N-core
 * scheduler (per-token re-enqueue, decode-before-fresh picking,
 * TTFT and inter-token tails), the per-token KV allocation path
 * through the serving pool, quarantine mid-generation, and
 * determinism across sweep-runner thread counts plus timing-cache
 * warm replay.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/systems.hh"
#include "core/timing_cache.hh"
#include "serve/server.hh"
#include "sim/fault_injector.hh"
#include "sim/sweep_runner.hh"
#include "workload/layer_timing.hh"
#include "workload/model_zoo.hh"

namespace snpu
{
namespace
{

// --- decoder workloads ---------------------------------------------

TEST(Decoder, TinygptShapesAndKvAccounting)
{
    const DecoderSpec d = makeDecoder(DecoderId::tinygpt);
    EXPECT_EQ(d.blocks, 2u);
    EXPECT_EQ(d.kvBytesPerToken(), 2ull * d.blocks * d.hidden);

    // Context pads to the KV page.
    EXPECT_EQ(d.contextAt(0) % d.kv_page, 0u);
    EXPECT_GE(d.contextAt(0), d.prompt + 1);
    EXPECT_LE(d.contextAt(7), d.contextAt(8));

    // Prefill: full-prompt GEMMs, six per block, weights resident
    // (nothing streams).
    const ModelSpec prefill = makePrefill(d);
    ASSERT_EQ(prefill.layers.size(), 6u * d.blocks);
    for (const LayerSpec &l : prefill.layers) {
        EXPECT_EQ(l.m, d.prompt);
        EXPECT_FALSE(l.stream_weights);
    }

    // Decode: M = 1 everywhere; exactly the attention score/context
    // GEMMs stream the KV cache as their weight operand, sized by
    // the padded context.
    const std::uint32_t ctx = d.contextAt(0);
    const ModelSpec step = makeDecodeStep(d, 0);
    ASSERT_EQ(step.layers.size(), 6u * d.blocks);
    std::uint32_t streamed = 0;
    for (const LayerSpec &l : step.layers) {
        EXPECT_EQ(l.m, 1u);
        if (l.stream_weights) {
            ++streamed;
            EXPECT_EQ(l.kind, LayerKind::attention);
            EXPECT_TRUE(l.n == ctx || l.k == ctx);
        } else {
            EXPECT_NE(l.kind, LayerKind::attention);
        }
    }
    EXPECT_EQ(streamed, 2u * d.blocks);
}

TEST(Decoder, ScheduleDedupesByPaddedContext)
{
    const DecoderSpec d = makeDecoder(DecoderId::tinygpt);
    // tinygpt: prompt 32, page 16 — tokens 1..16 all pad to context
    // 48, token 17 crosses into the next page.
    const DecodeSchedule sched = makeDecodeSchedule(d, 20);
    ASSERT_EQ(sched.step_shape.size(), 20u);
    ASSERT_EQ(sched.shapes.size(), 2u);
    for (std::uint32_t t = 0; t < 16; ++t)
        EXPECT_EQ(sched.step_shape[t], 0u) << "token " << t;
    for (std::uint32_t t = 16; t < 20; ++t)
        EXPECT_EQ(sched.step_shape[t], 1u) << "token " << t;
    // Steady-state decode replays one shape: that is what lets the
    // timing cache serve warm steps.
    const DecodeSchedule steady = makeDecodeSchedule(d, 16);
    EXPECT_EQ(steady.shapes.size(), 1u);
}

TEST(Decoder, StreamWeightsChangesTheTimingFingerprint)
{
    // A decode step and the same shapes with residency-planned
    // weights must never share a timing-cache entry.
    const DecoderSpec d = makeDecoder(DecoderId::tinygpt);
    ModelSpec step = makeDecodeStep(d, 0);
    ModelSpec resident = step;
    for (LayerSpec &l : resident.layers)
        l.stream_weights = false;
    EXPECT_NE(modelFingerprint(step), modelFingerprint(resident));
}

// --- continuous batching -------------------------------------------

std::vector<TenantSpec>
makeGenTenants(std::uint32_t n, std::uint32_t requests,
               std::uint32_t tokens, std::uint32_t n_secure)
{
    std::vector<TenantSpec> tenants(n);
    for (std::uint32_t t = 0; t < n; ++t) {
        TenantSpec &spec = tenants[t];
        spec.name = "gen_" + std::to_string(t);
        spec.task.name = spec.name;
        spec.task.world =
            t < n_secure ? World::secure : World::normal;
        spec.arrivals.assign(requests, 0);
        spec.queue_capacity = requests;
        spec.decode_tokens = tokens;
        spec.decoder = makeDecoder(DecoderId::tinygpt);
    }
    return tenants;
}

TEST(ContinuousBatching, ServesTokensAndReportsPerTokenTails)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.latency_hist_max = 4.0e7;
    SnpuServer server(*soc, cfg);
    const ServeResult res = server.serve(makeGenTenants(2, 2, 6, 1));
    ASSERT_TRUE(res.ok()) << res.error();

    for (const TenantReport &rep : res.tenants) {
        EXPECT_EQ(rep.completed, 2u) << rep.name;
        EXPECT_EQ(rep.failed, 0u) << rep.name;
        EXPECT_EQ(rep.tokens, 2u * 6u) << rep.name;
        EXPECT_GT(rep.ttft_p50, 0u) << rep.name;
        EXPECT_LE(rep.ttft_p50, rep.ttft_p99) << rep.name;
        EXPECT_GT(rep.token_p50, 0u) << rep.name;
        EXPECT_LE(rep.token_p50, rep.token_p99) << rep.name;
        EXPECT_GT(rep.kv_alloc_cycles, 0u) << rep.name;
    }
    EXPECT_GT(res.token_alloc_overhead, 0u);

    // Under the NPU Monitor the serving pool is the monitor's own;
    // steady-state decode hits it.
    ASSERT_NE(server.kvPool(), nullptr);
    EXPECT_GT(server.kvPool()->hits(), 0u);
}

TEST(ContinuousBatching, DecodeStepsBeatFreshContexts)
{
    // One core, two identical tenants arriving together: the picker
    // keeps an in-flight generation's decode steps ahead of the
    // waiting tenant's prefill (vLLM-style decode priority), so the
    // second tenant's first token lands only after the first
    // tenant's generation retires — but nobody starves.
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 1;
    cfg.latency_hist_max = 4.0e7;
    SnpuServer server(*soc, cfg);
    const ServeResult res = server.serve(makeGenTenants(2, 1, 8, 0));
    ASSERT_TRUE(res.ok()) << res.error();

    const TenantReport &first = res.tenants[0];
    const TenantReport &second = res.tenants[1];
    EXPECT_EQ(first.completed, 1u);
    EXPECT_EQ(second.completed, 1u);
    EXPECT_EQ(first.tokens, 8u);
    EXPECT_EQ(second.tokens, 8u);
    // Histogram percentiles are bucketized; compare with slack.
    EXPECT_GT(static_cast<double>(second.ttft_p50),
              0.9 * static_cast<double>(first.worst_latency));
}

TEST(ContinuousBatching, QuarantineMidGenerationFlushesTheKvPool)
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 1;
    cfg.latency_hist_max = 4.0e7;
    cfg.quarantine_threshold = 1;
    cfg.fault_injection = true;
    // The monitor's allocator site is probed once at the secure
    // tenant's exec start and once per decode token: the third
    // occurrence is token 2's KV allocation — mid-generation.
    FaultSpec spec;
    spec.site = FaultSite::monitor_alloc;
    spec.trigger = FaultTrigger::nth;
    spec.nth = 3;
    spec.max_fires = 1;
    cfg.fault_plan.faults.push_back(spec);
    SnpuServer server(*soc, cfg);

    const ServeResult res = server.serve(makeGenTenants(2, 1, 6, 1));
    ASSERT_TRUE(res.ok()) << res.error();

    // The secure tenant fails terminally mid-generation (the
    // breaker trips on the first fault) having retired exactly one
    // token; its KV blocks go back and the pool is scrubbed.
    const TenantReport &secure = res.tenants[0];
    EXPECT_TRUE(secure.quarantined);
    EXPECT_EQ(secure.failed, 1u);
    EXPECT_EQ(secure.completed, 0u);
    EXPECT_EQ(secure.tokens, 1u);

    ASSERT_NE(server.kvPool(), nullptr);
    EXPECT_GE(server.kvPool()->flushCount(), 1u);

    // The normal tenant's generation is unaffected.
    const TenantReport &normal = res.tenants[1];
    EXPECT_EQ(normal.completed, 1u);
    EXPECT_EQ(normal.tokens, 6u);
    EXPECT_FALSE(normal.quarantined);
}

// --- determinism ---------------------------------------------------

struct RunDump
{
    Tick makespan = 0;
    std::uint64_t tokens = 0;
    std::string registry_json;
};

RunDump
decodeWindow()
{
    auto soc = buildSoc(SystemKind::snpu);
    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.latency_hist_max = 4.0e7;
    SnpuServer server(*soc, cfg);
    const ServeResult res = server.serve(makeGenTenants(2, 2, 6, 1));
    EXPECT_TRUE(res.ok()) << res.error();
    RunDump dump;
    dump.makespan = res.makespan;
    for (const TenantReport &rep : res.tenants)
        dump.tokens += rep.tokens;
    std::ostringstream os;
    soc->registry().dumpJson(os);
    dump.registry_json = os.str();
    return dump;
}

TEST(ContinuousBatching, ByteIdenticalAtAnyJobsCount)
{
    // The same serving window through the sweep runner at 1 and 4
    // host threads: every point must reproduce the same makespan,
    // token count and registry JSON byte for byte.
    std::vector<RunDump> dumps;
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(SweepOptions{jobs});
        std::vector<std::function<RunDump(SweepContext &)>> work(
            3, [](SweepContext &) { return decodeWindow(); });
        for (const auto &outcome : runner.map<RunDump>(work)) {
            ASSERT_TRUE(outcome.ok())
                << outcome.status.toString();
            dumps.push_back(outcome.value);
        }
    }
    ASSERT_EQ(dumps.size(), 6u);
    for (std::size_t i = 1; i < dumps.size(); ++i) {
        EXPECT_EQ(dumps[i].makespan, dumps[0].makespan);
        EXPECT_EQ(dumps[i].tokens, dumps[0].tokens);
        EXPECT_EQ(dumps[i].registry_json, dumps[0].registry_json);
    }
}

TEST(ContinuousBatching, WarmReplayMatchesLiveRegistryJson)
{
    if (!TimingCache::enabled())
        GTEST_SKIP() << "SNPU_TIMING_CACHE=0 in the environment";

    TimingCache &cache = TimingCache::global();
    cache.clear();
    const RunDump live = decodeWindow();
    const std::uint64_t hits_before = cache.hits();
    const RunDump warm = decodeWindow();
    EXPECT_GT(cache.hits(), hits_before)
        << "warm decode window never hit the timing cache";
    EXPECT_EQ(live.makespan, warm.makespan);
    EXPECT_EQ(live.registry_json, warm.registry_json);
}

} // namespace
} // namespace snpu
