/**
 * @file
 * Unit tests for the CachingTrustedAllocator — the per-token
 * secure-memory fast path layered on the first-fit trusted
 * allocator: pool reuse hit/miss accounting, split/coalesce, the
 * reclaim-then-fail exhaustion contract, flush as the scrub point,
 * the first-fit baseline with caching disabled, and the
 * reserved-vs-allocated distinction that keeps arena pressure
 * visible through the pool.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "tee/monitor/trusted_allocator.hh"

namespace snpu
{
namespace
{

constexpr Addr kib = 1024;
constexpr Addr slab_bytes = 64 * kib;
const CachingTrustedAllocator::CostModel cost{};

Tick
missFloor()
{
    return cost.monitor_call + cost.walk_base;
}

struct Fixture
{
    stats::Group root{"test"};
    TrustedAllocator arena;
    CachingTrustedAllocator pool;

    explicit Fixture(Addr arena_bytes = 1u << 20)
        : arena(AddrRange{0x10000, arena_bytes}),
          pool(arena, root, "pool")
    {}
};

TEST(CachingAllocator, FirstAllocMissesThenPoolServesReuse)
{
    Fixture f;

    // Cold: one monitor trip carves a 64 KiB slab and parks the
    // remainder.
    AllocOutcome a = f.pool.alloc(512);
    ASSERT_NE(a.addr, 0u);
    EXPECT_FALSE(a.pool_hit);
    EXPECT_GE(a.cycles, missFloor());
    EXPECT_EQ(f.pool.misses(), 1u);
    EXPECT_EQ(f.pool.hits(), 0u);
    EXPECT_EQ(f.arena.bytesAllocated(), slab_bytes);

    // Warm: the parked remainder splits to serve the next request —
    // no monitor trip, pool-hit cost only.
    AllocOutcome b = f.pool.alloc(512);
    ASSERT_NE(b.addr, 0u);
    EXPECT_TRUE(b.pool_hit);
    EXPECT_EQ(b.cycles, cost.pool_hit);
    EXPECT_EQ(f.pool.hits(), 1u);
    EXPECT_GE(f.pool.splitCount(), 1u);
    // Same slab, adjacent carve.
    EXPECT_EQ(b.addr, a.addr + 512);

    // Round trip: free then realloc the same class is a hit again.
    EXPECT_EQ(f.pool.free(a.addr), cost.pool_free);
    AllocOutcome c = f.pool.alloc(512);
    EXPECT_TRUE(c.pool_hit);
    EXPECT_EQ(c.addr, a.addr);
    EXPECT_EQ(f.pool.misses(), 1u); // still just the cold one
}

TEST(CachingAllocator, SizeClassRounding)
{
    Fixture f;
    // Small classes round to 512 B: a 100 B and a 512 B request are
    // the same class, so the freed block of one serves the other.
    AllocOutcome a = f.pool.alloc(100);
    f.pool.free(a.addr);
    AllocOutcome b = f.pool.alloc(512);
    EXPECT_TRUE(b.pool_hit);
    EXPECT_EQ(b.addr, a.addr);
    EXPECT_EQ(f.pool.liveBytes(), 512u);
}

TEST(CachingAllocator, FreeCoalescesAdjacentCachedBlocks)
{
    Fixture f;
    const Addr a = f.pool.alloc(512).addr;
    const Addr b = f.pool.alloc(512).addr;
    const Addr c = f.pool.alloc(512).addr;
    ASSERT_EQ(b, a + 512);
    ASSERT_EQ(c, b + 512);

    // Free everything: neighbours merge back until the whole slab is
    // one cached block again.
    f.pool.free(a);
    f.pool.free(b);
    f.pool.free(c);
    EXPECT_GE(f.pool.coalesceCount(), 3u);
    EXPECT_EQ(f.pool.liveBytes(), 0u);
    EXPECT_EQ(f.pool.cachedBytes(), slab_bytes);

    // The coalesced block serves a request bigger than any of the
    // three freed ones without another monitor trip.
    AllocOutcome big = f.pool.alloc(4 * kib);
    EXPECT_TRUE(big.pool_hit);
    EXPECT_EQ(big.addr, a);
}

TEST(CachingAllocator, LargeBlocksGetTheirOwnSlab)
{
    Fixture f;
    // > 64 KiB: large class, rounded to a 64 KiB multiple, one slab
    // per block (no carving).
    AllocOutcome l1 = f.pool.alloc(100 * kib);
    AllocOutcome l2 = f.pool.alloc(100 * kib);
    ASSERT_NE(l1.addr, 0u);
    ASSERT_NE(l2.addr, 0u);
    EXPECT_EQ(f.pool.liveBytes(), 2 * 128 * kib);
    EXPECT_EQ(f.arena.bytesReserved(), 2 * 128 * kib);
    EXPECT_EQ(f.pool.cachedBytes(), 0u);

    f.pool.free(l1.addr);
    AllocOutcome l3 = f.pool.alloc(65 * kib); // same 128 KiB class
    EXPECT_TRUE(l3.pool_hit);
    EXPECT_EQ(l3.addr, l1.addr);
}

TEST(CachingAllocator, ReservedStaysVisibleThroughThePool)
{
    Fixture f;
    const Addr a = f.pool.alloc(512).addr;
    EXPECT_EQ(f.arena.bytesReserved(), slab_bytes);
    EXPECT_EQ(f.arena.peakReserved(), slab_bytes);

    // A pool free parks the block: client-live drops, but the arena
    // still counts the slab as reserved — caching cannot make arena
    // pressure invisible.
    f.pool.free(a);
    EXPECT_EQ(f.pool.liveBytes(), 0u);
    EXPECT_EQ(f.arena.bytesReserved(), slab_bytes);
    EXPECT_EQ(f.arena.bytesAllocated(), slab_bytes);

    // Only flush() actually returns the memory.
    EXPECT_EQ(f.pool.flush(), slab_bytes);
    EXPECT_EQ(f.arena.bytesReserved(), 0u);
    EXPECT_EQ(f.arena.peakReserved(), slab_bytes); // high-water sticks
}

TEST(CachingAllocator, FlushReleasesIdleSlabsOnly)
{
    Fixture f;
    AllocOutcome l1 = f.pool.alloc(100 * kib);
    AllocOutcome l2 = f.pool.alloc(100 * kib);
    f.pool.free(l1.addr); // l1's slab idle, l2's pinned

    EXPECT_EQ(f.pool.flush(), 128 * kib);
    EXPECT_EQ(f.pool.flushCount(), 1u);
    EXPECT_EQ(f.arena.bytesReserved(), 128 * kib);
    EXPECT_EQ(f.pool.liveBytes(), 128 * kib);

    // The survivor is untouched and frees normally afterwards.
    f.pool.free(l2.addr);
    EXPECT_EQ(f.pool.flush(), 128 * kib);
    EXPECT_EQ(f.arena.bytesReserved(), 0u);
}

TEST(CachingAllocator, ExhaustionReclaimsThenReportsZero)
{
    // Arena fits exactly two small slabs.
    Fixture f(2 * slab_bytes);
    const Addr a = f.pool.alloc(60 * kib).addr;
    const Addr b = f.pool.alloc(60 * kib).addr;
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);

    // Both slabs pinned by live blocks: the emergency flush frees
    // nothing and the retry fails — addr 0 is the exhaustion
    // verdict, after exactly one reclaim attempt.
    AllocOutcome c = f.pool.alloc(60 * kib);
    EXPECT_EQ(c.addr, 0u);
    EXPECT_EQ(f.pool.reclaimCount(), 1u);
    EXPECT_GE(c.cycles, 2 * missFloor()); // walked the arena twice

    // Park both blocks (slabs stay reserved), then ask for a large
    // block: the reclaim flush hands the idle slabs back and the
    // retry succeeds — the pool never turns reusable memory into an
    // exhaustion verdict the arena would not have given.
    f.pool.free(a);
    f.pool.free(b);
    EXPECT_EQ(f.arena.bytesReserved(), 2 * slab_bytes);
    AllocOutcome big = f.pool.alloc(100 * kib);
    EXPECT_NE(big.addr, 0u);
    EXPECT_FALSE(big.pool_hit);
    EXPECT_EQ(f.pool.reclaimCount(), 2u);
}

TEST(CachingAllocator, DisabledCachingIsTheFirstFitBaseline)
{
    Fixture f;
    // Warm the pool, then disable: the mode switch flushes so no
    // stale pooled block survives.
    f.pool.free(f.pool.alloc(512).addr);
    EXPECT_GT(f.pool.cachedBytes(), 0u);
    f.pool.setCaching(false);
    EXPECT_EQ(f.pool.cachedBytes(), 0u);
    EXPECT_EQ(f.arena.bytesReserved(), 0u);

    // Every call now walks the arena at monitor cost; a free/realloc
    // round trip never hits.
    const std::uint64_t hits = f.pool.hits();
    AllocOutcome a = f.pool.alloc(512);
    ASSERT_NE(a.addr, 0u);
    EXPECT_FALSE(a.pool_hit);
    EXPECT_GE(a.cycles, missFloor());
    EXPECT_EQ(f.arena.bytesAllocated(), 512u); // no slab carving
    EXPECT_GE(f.pool.free(a.addr), missFloor());
    AllocOutcome b = f.pool.alloc(512);
    EXPECT_FALSE(b.pool_hit);
    EXPECT_EQ(f.pool.hits(), hits);
    f.pool.free(b.addr);
}

TEST(CachingAllocator, PerPoolStatsRegisterUnderTheParentGroup)
{
    Fixture f;
    AllocOutcome small = f.pool.alloc(512);
    AllocOutcome large = f.pool.alloc(100 * kib);
    f.pool.free(small.addr);
    f.pool.free(large.addr);

    std::ostringstream os;
    f.root.dumpJson(os);
    const std::string json = os.str();
    for (const char *stat :
         {"small_current_bytes", "small_peak_bytes",
          "small_allocated_bytes", "small_freed_bytes",
          "large_current_bytes", "large_peak_bytes",
          "large_allocated_bytes", "large_freed_bytes", "pool_hits",
          "pool_misses", "pool_splits", "pool_coalesces",
          "pool_flushes", "pool_reclaims", "cached_bytes",
          "alloc_cycles"}) {
        EXPECT_NE(json.find(stat), std::string::npos)
            << stat << " missing from the stats dump";
    }
}

} // namespace
} // namespace snpu
