/**
 * @file
 * Security tests: every attack in the library must succeed against
 * the unprotected baseline and be blocked by sNPU. This is the
 * executable form of the paper's three attack surfaces.
 */

#include <gtest/gtest.h>

#include "core/attacks.hh"
#include "core/soc.hh"

namespace snpu
{
namespace
{

const std::vector<std::uint8_t> secret = {0xde, 0xad, 0xbe, 0xef,
                                          0x10, 0x20, 0x30, 0x40};

TEST(Attacks, LeftoverLocalsSucceedsOnNormalNpu)
{
    Soc soc(makeSystem(SystemKind::normal_npu));
    AttackResult res = leftoverLocalsAttack(soc, secret);
    EXPECT_FALSE(res.blocked) << res.detail;
    ASSERT_EQ(res.leaked.size(), secret.size());
    EXPECT_EQ(res.leaked, secret);
}

TEST(Attacks, LeftoverLocalsBlockedOnSnpu)
{
    Soc soc(makeSystem(SystemKind::snpu));
    AttackResult res = leftoverLocalsAttack(soc, secret);
    EXPECT_TRUE(res.blocked) << res.detail;
    EXPECT_TRUE(res.leaked.empty());
}

TEST(Attacks, NocHijackSucceedsOnNormalNpu)
{
    Soc soc(makeSystem(SystemKind::normal_npu));
    AttackResult res = nocHijackAttack(soc, secret);
    EXPECT_FALSE(res.blocked) << res.detail;
    EXPECT_EQ(res.leaked, secret);
}

TEST(Attacks, NocHijackBlockedByPeephole)
{
    Soc soc(makeSystem(SystemKind::snpu));
    AttackResult res = nocHijackAttack(soc, secret);
    EXPECT_TRUE(res.blocked) << res.detail;
    EXPECT_NE(res.detail.find("peephole"), std::string::npos);
}

TEST(Attacks, DmaOutOfBoundsBlockedEverywhere)
{
    // Even the normal NPU's memory partition stops a normal-world
    // DMA into secure memory; sNPU additionally blocks it at the
    // Guarder before it reaches the bus.
    for (SystemKind kind :
         {SystemKind::normal_npu, SystemKind::snpu}) {
        Soc soc(makeSystem(kind));
        AttackResult res = dmaOutOfBoundsAttack(soc, secret);
        EXPECT_TRUE(res.blocked)
            << systemKindName(kind) << ": " << res.detail;
    }
}

TEST(Attacks, DmaOutOfBoundsSucceedsIfNpuClaimsSecure)
{
    // On the unprotected NPU, the driver can first flip the core
    // into the secure world (no enforcement), then the DMA passes
    // the partition — the full threat-1 chain.
    Soc soc(makeSystem(SystemKind::normal_npu));
    ASSERT_TRUE(soc.driverSetCoreWorld(
        0, World::secure, SecureContext::normalDriver()));
    AttackResult res = dmaOutOfBoundsAttack(soc, secret);
    // dmaOutOfBoundsAttack resets core 0 to normal world itself, so
    // re-flip before the DMA: run the raw steps here instead.
    // (The helper already sets world normal; this test documents
    // the distinction via the soc-level API.)
    (void)res;
    ASSERT_TRUE(soc.driverSetCoreWorld(
        0, World::secure, SecureContext::normalDriver()));
    NpuCore &core = soc.npu().core(0);
    const Addr secret_pa =
        soc.mem().map().secureRegion().base + (4u << 20);
    soc.mem().data().write(secret_pa, secret.data(), secret.size());
    DmaRequest req{secret_pa, 64, MemOp::read, core.idState()};
    std::vector<std::uint8_t> buf;
    DmaResult dres = core.dma().transfer(0, req, &buf);
    EXPECT_TRUE(dres.ok);
    buf.resize(secret.size());
    EXPECT_EQ(buf, secret);
}

TEST(Attacks, SecInstructionBlockedOnAllSystems)
{
    for (SystemKind kind :
         {SystemKind::normal_npu, SystemKind::trustzone_npu,
          SystemKind::snpu}) {
        Soc soc(makeSystem(kind));
        AttackResult res = secInstructionAttack(soc);
        EXPECT_TRUE(res.blocked)
            << systemKindName(kind) << ": " << res.detail;
    }
}

TEST(Attacks, TopologyAttackBlockedByMonitor)
{
    Soc snpu(makeSystem(SystemKind::snpu));
    EXPECT_TRUE(topologyAttack(snpu).blocked);

    Soc normal(makeSystem(SystemKind::normal_npu));
    EXPECT_FALSE(topologyAttack(normal).blocked);
}

TEST(Attacks, TamperedCodeBlockedByMonitor)
{
    Soc snpu(makeSystem(SystemKind::snpu));
    AttackResult res = tamperedCodeAttack(snpu);
    EXPECT_TRUE(res.blocked) << res.detail;
    EXPECT_NE(res.detail.find("measurement"), std::string::npos);

    Soc normal(makeSystem(SystemKind::normal_npu));
    EXPECT_FALSE(tamperedCodeAttack(normal).blocked);
}

TEST(Attacks, FullSuiteBlockedOnSnpu)
{
    Soc soc(makeSystem(SystemKind::snpu));
    const auto results = runAllAttacks(soc);
    EXPECT_EQ(results.size(), 6u);
    for (const auto &res : results)
        EXPECT_TRUE(res.blocked) << res.name << ": " << res.detail;
}

TEST(Attacks, BaselineIsActuallyVulnerable)
{
    // Guards against a trivially-blocking attack library: the
    // unprotected system must fail at least three of the attacks.
    Soc soc(makeSystem(SystemKind::normal_npu));
    const auto results = runAllAttacks(soc);
    int succeeded = 0;
    for (const auto &res : results)
        succeeded += res.blocked ? 0 : 1;
    EXPECT_GE(succeeded, 3);
}

} // namespace
} // namespace snpu
