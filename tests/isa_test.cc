/**
 * @file
 * Tests for the ISA types: instruction rendering (used by the trace
 * infrastructure) and opcode naming.
 */

#include <gtest/gtest.h>

#include "npu/isa.hh"

namespace snpu
{
namespace
{

TEST(Isa, AllOpcodesNamed)
{
    for (Opcode op : {Opcode::config, Opcode::mvin, Opcode::mvin_weight,
                      Opcode::mvout, Opcode::preload, Opcode::compute,
                      Opcode::noc_send, Opcode::noc_recv, Opcode::fence,
                      Opcode::flush_spad, Opcode::sec_set_id,
                      Opcode::sec_reset_spad}) {
        EXPECT_STRNE(opcodeName(op), "?");
    }
}

TEST(Isa, MvinRendersOperands)
{
    Instr in;
    in.op = Opcode::mvin;
    in.vaddr = 0x1234;
    in.spad_row = 42;
    in.rows = 7;
    const std::string text = in.toString();
    EXPECT_NE(text.find("mvin"), std::string::npos);
    EXPECT_NE(text.find("0x1234"), std::string::npos);
    EXPECT_NE(text.find("row=42"), std::string::npos);
    EXPECT_NE(text.find("n=7"), std::string::npos);
}

TEST(Isa, ComputeRendersAccumulationMode)
{
    Instr in;
    in.op = Opcode::compute;
    in.spad_row = 1;
    in.spad_row2 = 2;
    in.rows = 16;
    in.k = 8;
    in.accumulate = true;
    EXPECT_NE(in.toString().find("+="), std::string::npos);
    in.accumulate = false;
    EXPECT_EQ(in.toString().find("+="), std::string::npos);
}

TEST(Isa, PrivilegedInstructionsMarked)
{
    Instr in;
    in.op = Opcode::sec_set_id;
    in.world = World::secure;
    in.privileged = true;
    const std::string text = in.toString();
    EXPECT_NE(text.find("[priv]"), std::string::npos);
    EXPECT_NE(text.find("secure"), std::string::npos);
    in.privileged = false;
    EXPECT_EQ(in.toString().find("[priv]"), std::string::npos);
}

TEST(Isa, NocSendRendersPeer)
{
    Instr in;
    in.op = Opcode::noc_send;
    in.peer = 5;
    in.spad_row = 3;
    in.rows = 9;
    const std::string text = in.toString();
    EXPECT_NE(text.find("peer=5"), std::string::npos);
    EXPECT_NE(text.find("n=9"), std::string::npos);
}

TEST(Isa, WorldNames)
{
    EXPECT_STREQ(worldName(World::secure), "secure");
    EXPECT_STREQ(worldName(World::normal), "normal");
}

} // namespace
} // namespace snpu
