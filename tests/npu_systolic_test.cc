/**
 * @file
 * Unit tests for the systolic array timing and functional model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "npu/systolic_model.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace snpu
{
namespace
{

TEST(Systolic, TimingFormulas)
{
    SystolicArray array;
    EXPECT_EQ(array.dim(), 16u);
    EXPECT_EQ(array.preloadCycles(), 16u);
    EXPECT_EQ(array.computeCycles(64), 64u + 32);
    EXPECT_EQ(array.peakMacsPerCycle(), 256u);
}

TEST(Systolic, BadDimIsFatal)
{
    SystolicParams p;
    p.dim = 0;
    EXPECT_THROW(SystolicArray array(p), FatalError);
}

TEST(Systolic, ComputeRowMatchesReference)
{
    SystolicArray array;
    std::vector<std::int8_t> weights(16 * 16);
    Rng rng(42);
    for (auto &w : weights)
        w = static_cast<std::int8_t>(rng.range(-128, 127));
    array.preload(weights.data());

    std::int8_t a[16];
    for (auto &v : a)
        v = static_cast<std::int8_t>(rng.range(-128, 127));

    std::int32_t acc[16] = {};
    array.computeRow(a, 16, acc, false);

    for (int col = 0; col < 16; ++col) {
        std::int32_t expected = 0;
        for (int i = 0; i < 16; ++i)
            expected += static_cast<std::int32_t>(a[i]) *
                        weights[i * 16 + col];
        EXPECT_EQ(acc[col], expected) << "col " << col;
    }
}

TEST(Systolic, AccumulateAddsToPriorValues)
{
    SystolicArray array;
    std::vector<std::int8_t> weights(256, 1);
    array.preload(weights.data());
    std::int8_t a[16];
    std::fill(std::begin(a), std::end(a), 2);

    std::int32_t acc[16];
    std::fill(std::begin(acc), std::end(acc), 100);
    array.computeRow(a, 16, acc, true);
    for (int col = 0; col < 16; ++col)
        EXPECT_EQ(acc[col], 100 + 2 * 16);
}

TEST(Systolic, OverwriteClearsPriorValues)
{
    SystolicArray array;
    std::vector<std::int8_t> weights(256, 1);
    array.preload(weights.data());
    std::int8_t a[16] = {};
    std::int32_t acc[16];
    std::fill(std::begin(acc), std::end(acc), 999);
    array.computeRow(a, 16, acc, false);
    for (int col = 0; col < 16; ++col)
        EXPECT_EQ(acc[col], 0);
}

TEST(Systolic, PartialKUsesOnlyLiveElements)
{
    SystolicArray array;
    std::vector<std::int8_t> weights(256, 1);
    array.preload(weights.data());
    std::int8_t a[16];
    std::fill(std::begin(a), std::end(a), 1);
    std::int32_t acc[16] = {};
    array.computeRow(a, 5, acc, false);
    for (int col = 0; col < 16; ++col)
        EXPECT_EQ(acc[col], 5);
}

TEST(Systolic, KBeyondDimPanics)
{
    SystolicArray array;
    std::int8_t a[16] = {};
    std::int32_t acc[16] = {};
    EXPECT_THROW(array.computeRow(a, 17, acc, false), PanicError);
}

TEST(Systolic, NullPreloadZeroesWeights)
{
    SystolicArray array;
    std::vector<std::int8_t> weights(256, 3);
    array.preload(weights.data());
    array.preload(nullptr);
    std::int8_t a[16];
    std::fill(std::begin(a), std::end(a), 7);
    std::int32_t acc[16] = {};
    array.computeRow(a, 16, acc, false);
    for (int col = 0; col < 16; ++col)
        EXPECT_EQ(acc[col], 0);
}

} // namespace
} // namespace snpu
