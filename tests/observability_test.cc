/**
 * @file
 * Integration tests for the unified observability layer: one sink
 * attached at the SoC fans out to every instrumented subsystem, the
 * serving path emits a complete span per request, and a detached SoC
 * is silent end to end.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/systems.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/fault_injector.hh"
#include "sim/random.hh"
#include "sim/trace.hh"

namespace snpu
{
namespace
{

NpuTask
smallTask(ModelId id, World world)
{
    NpuTask task = NpuTask::fromModel(id, world);
    task.model = task.model.scaled(64);
    return task;
}

/** Two tenants, the first secure, with Poisson arrivals. */
std::vector<TenantSpec>
makeTenants(std::uint32_t requests, std::uint64_t seed)
{
    std::vector<TenantSpec> tenants;
    const ModelId models[] = {ModelId::mobilenet, ModelId::yololite};
    const World worlds[] = {World::secure, World::normal};
    for (std::uint32_t t = 0; t < 2; ++t) {
        TenantSpec spec;
        spec.name = std::string(modelName(models[t])) + "_" +
                    std::to_string(t);
        spec.task = smallTask(models[t], worlds[t]);
        spec.queue_capacity = 8;
        Rng rng(seed + t);
        spec.arrivals = poissonArrivals(rng, 200000.0, requests);
        tenants.push_back(spec);
    }
    return tenants;
}

std::string
join(const std::set<std::string> &items)
{
    std::ostringstream os;
    for (const std::string &s : items)
        os << s << " ";
    return os.str();
}

std::size_t
countSpanEvents(const MemoryTraceSink &sink, const std::string &name,
                const std::string &marker)
{
    std::size_t n = 0;
    for (const auto &rec : sink.records) {
        if (rec.category == TraceCategory::serve &&
            rec.what.find(name + "#") != std::string::npos &&
            rec.what.find(marker) != std::string::npos)
            ++n;
    }
    return n;
}

TEST(Observability, SocFansOutAttachAndDetach)
{
    auto soc = buildSoc(SystemKind::snpu);
    EXPECT_EQ(soc->traceSink(), nullptr);
    MemoryTraceSink sink;
    soc->attachTrace(&sink);
    EXPECT_EQ(soc->traceSink(), &sink);
    soc->attachTrace(nullptr);
    EXPECT_EQ(soc->traceSink(), nullptr);
}

/**
 * One serving window with a sink on the SoC: the trace must carry
 * records from at least seven distinct components spanning the
 * serving engine, the scheduler, the monitor and the per-tile
 * datapath — and every completed request must leave a full
 * admitted/dispatched/exec-start/completed span.
 */
TEST(Observability, ServeWindowEmitsAcrossSubsystems)
{
    auto soc = buildSoc(SystemKind::snpu);
    MemoryTraceSink sink;
    soc->attachTrace(&sink);

    ServerConfig cfg;
    cfg.num_cores = 2;
    // Flushing policies exercise the scratchpad scrub path too.
    cfg.policy = SchedPolicy::flush_fine;
    SnpuServer server(*soc, cfg);
    const std::vector<TenantSpec> tenants = makeTenants(4, 11);
    ServeResult res = server.serve(tenants);
    ASSERT_TRUE(res.ok()) << res.error();
    ASSERT_FALSE(sink.records.empty());

    std::set<std::string> whos;
    std::set<TraceCategory> cats;
    for (const auto &rec : sink.records) {
        whos.insert(rec.who);
        cats.insert(rec.category);
    }
    EXPECT_GE(whos.size(), 7u) << "emitters: " << join(whos);
    for (const char *expected : {"serve", "sched", "monitor", "core0"})
        EXPECT_TRUE(whos.count(expected))
            << "missing '" << expected << "' in: " << join(whos);
    EXPECT_TRUE(cats.count(TraceCategory::serve));
    EXPECT_TRUE(cats.count(TraceCategory::sched));
    EXPECT_TRUE(cats.count(TraceCategory::monitor));
    EXPECT_TRUE(cats.count(TraceCategory::instr));
    EXPECT_TRUE(cats.count(TraceCategory::dma));

    // Every request that completed left a full span, both in the
    // report summary and as trace records.
    for (const TenantReport &rep : res.tenants) {
        EXPECT_EQ(rep.completed, 4u);
        EXPECT_EQ(rep.spans, rep.completed);
        EXPECT_GT(rep.mean_exec_cycles, 0.0);
        EXPECT_GE(rep.mean_queue_cycles, 0.0);
        EXPECT_EQ(countSpanEvents(sink, rep.name, " admitted"),
                  rep.completed);
        EXPECT_EQ(countSpanEvents(sink, rep.name, " dispatched"),
                  rep.completed);
        EXPECT_EQ(countSpanEvents(sink, rep.name, " exec start"),
                  rep.completed);
        EXPECT_EQ(countSpanEvents(sink, rep.name, " completed"),
                  rep.completed);
    }
}

/** A sink mask narrows the stream to the selected categories. */
TEST(Observability, MaskSelectsServeSpansOnly)
{
    auto soc = buildSoc(SystemKind::snpu);
    MemoryTraceSink sink(traceMask(TraceCategory::serve));
    soc->attachTrace(&sink);
    SnpuServer server(*soc);
    ServeResult res = server.serve(makeTenants(2, 12));
    ASSERT_TRUE(res.ok()) << res.error();
    ASSERT_FALSE(sink.records.empty());
    for (const auto &rec : sink.records) {
        EXPECT_EQ(rec.category, TraceCategory::serve);
        EXPECT_EQ(rec.who, "serve");
    }
}

/**
 * Detaching at the SoC silences every subsystem: the serving window
 * still runs (and still computes span summaries) but the old sink
 * receives nothing.
 */
TEST(Observability, DetachedSocIsSilentEndToEnd)
{
    auto soc = buildSoc(SystemKind::snpu);
    MemoryTraceSink sink;
    soc->attachTrace(&sink);
    soc->attachTrace(nullptr);

    SnpuServer server(*soc);
    ServeResult res = server.serve(makeTenants(2, 13));
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_TRUE(sink.records.empty());
    for (const TenantReport &rep : res.tenants)
        EXPECT_EQ(rep.spans, rep.completed);
}

/**
 * A transient injected DMA fault forces a retry: the retry shows up
 * in the span summary, in the serve trace, and as a fault-category
 * record from the faulting engine.
 */
TEST(Observability, RetryChainAppearsInSpansAndTrace)
{
    auto soc = buildSoc(SystemKind::snpu);
    MemoryTraceSink sink;
    soc->attachTrace(&sink);

    ServerConfig cfg;
    cfg.num_cores = 2;
    cfg.fault_injection = true;
    cfg.max_retries = 2;
    cfg.retry_backoff = 500;
    FaultSpec spec;
    spec.site = FaultSite::dma_transfer;
    spec.trigger = FaultTrigger::nth;
    spec.nth = 1;
    cfg.fault_plan.faults = {spec};

    SnpuServer server(*soc, cfg);
    ServeResult res = server.serve(makeTenants(4, 14));
    ASSERT_TRUE(res.ok()) << res.error();

    std::uint32_t retries = 0;
    std::uint32_t completed = 0;
    for (const TenantReport &rep : res.tenants) {
        retries += rep.retries;
        completed += rep.completed;
        EXPECT_EQ(rep.spans, rep.completed);
    }
    EXPECT_EQ(completed, 8u); // the retry absorbed the fault
    EXPECT_GT(retries, 0u);

    bool saw_retry = false;
    bool saw_fault = false;
    for (const auto &rec : sink.records) {
        saw_retry |= rec.category == TraceCategory::serve &&
                     rec.what.find("retry at") != std::string::npos;
        saw_fault |= rec.category == TraceCategory::fault;
    }
    EXPECT_TRUE(saw_retry);
    EXPECT_TRUE(saw_fault);
}

} // namespace
} // namespace snpu
