/**
 * @file
 * Tests for the execution trace infrastructure and the NPU core's
 * instrumentation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mem/mem_system.hh"
#include "npu/npu_core.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace snpu
{
namespace
{

TEST(Trace, MemorySinkRecords)
{
    MemoryTraceSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    tracer.emit(42, TraceCategory::instr, "core0", "mvin row=", 7);
    ASSERT_EQ(sink.records.size(), 1u);
    EXPECT_EQ(sink.records[0].when, 42u);
    EXPECT_EQ(sink.records[0].who, "core0");
    EXPECT_EQ(sink.records[0].what, "mvin row=7");
}

TEST(Trace, DetachedTracerIsSilent)
{
    MemoryTraceSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    tracer.detach();
    tracer.emit(1, TraceCategory::instr, "x", "y");
    EXPECT_TRUE(sink.records.empty());
    EXPECT_FALSE(tracer.active());
}

TEST(Trace, CategoryMaskFilters)
{
    MemoryTraceSink sink(traceMask(TraceCategory::security));
    Tracer tracer;
    tracer.attach(&sink);
    tracer.emit(1, TraceCategory::instr, "c", "ignored");
    tracer.emit(2, TraceCategory::security, "c", "kept");
    ASSERT_EQ(sink.records.size(), 1u);
    EXPECT_EQ(sink.records[0].what, "kept");
}

TEST(Trace, FileSinkWritesLines)
{
    const char *path = "trace_test_output.txt";
    {
        FileTraceSink sink(path);
        Tracer tracer;
        tracer.attach(&sink);
        tracer.emit(100, TraceCategory::dma, "dma0", "done");
        EXPECT_EQ(sink.lines(), 1u);
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "100 dma dma0: done");
    std::remove(path);
}

TEST(Trace, FileSinkBadPathIsFatal)
{
    EXPECT_THROW(FileTraceSink("/nonexistent/dir/trace.txt"),
                 FatalError);
}

TEST(Trace, CoreEmitsInstructionRecords)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl pass;
    NpuCoreParams p;
    p.spad_rows = 256;
    p.acc_rows = 64;
    p.timing_only = true;
    NpuCore core(stats, mem, pass, p);

    MemoryTraceSink sink(traceMask(TraceCategory::instr));
    core.attachTrace(&sink);

    NpuProgram prog;
    Instr mvin;
    mvin.op = Opcode::mvin;
    mvin.vaddr = mem.map().npuArena(World::normal).base;
    mvin.rows = 2;
    prog.code.push_back(mvin);
    Instr fence;
    fence.op = Opcode::fence;
    prog.code.push_back(fence);

    ASSERT_TRUE(core.run(0, prog).ok());
    ASSERT_EQ(sink.records.size(), 2u);
    EXPECT_EQ(sink.records[0].who, "core0");
    EXPECT_NE(sink.records[0].what.find("mvin"), std::string::npos);
    EXPECT_NE(sink.records[1].what.find("fence"), std::string::npos);

    // Detach stops the stream.
    core.attachTrace(nullptr);
    ASSERT_TRUE(core.run(1000, prog).ok());
    EXPECT_EQ(sink.records.size(), 2u);
}

TEST(Trace, CoreEmitsSecurityRecordsOnFailure)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl pass;
    NpuCoreParams p;
    p.spad_rows = 256;
    p.acc_rows = 64;
    NpuCore core(stats, mem, pass, p);

    MemoryTraceSink sink(traceMask(TraceCategory::security));
    core.attachTrace(&sink);

    NpuProgram evil;
    Instr instr;
    instr.op = Opcode::sec_set_id;
    instr.world = World::secure;
    instr.privileged = false;
    evil.code.push_back(instr);
    EXPECT_FALSE(core.run(0, evil).ok());
    ASSERT_FALSE(sink.records.empty());
    EXPECT_NE(sink.records[0].what.find("sec_set_id"),
              std::string::npos);
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::instr), "instr");
    EXPECT_STREQ(traceCategoryName(TraceCategory::dma), "dma");
    EXPECT_STREQ(traceCategoryName(TraceCategory::security), "sec");
    EXPECT_STREQ(traceCategoryName(TraceCategory::noc), "noc");
    EXPECT_STREQ(traceCategoryName(TraceCategory::sched), "sched");
    EXPECT_STREQ(traceCategoryName(TraceCategory::guarder),
                 "guarder");
    EXPECT_STREQ(traceCategoryName(TraceCategory::spad), "spad");
    EXPECT_STREQ(traceCategoryName(TraceCategory::monitor),
                 "monitor");
    EXPECT_STREQ(traceCategoryName(TraceCategory::fault), "fault");
    EXPECT_STREQ(traceCategoryName(TraceCategory::serve), "serve");
}

} // namespace
} // namespace snpu
