/**
 * @file
 * Unit tests for the sparse functional memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/phys_mem.hh"

namespace snpu
{
namespace
{

TEST(PhysMem, UntouchedMemoryReadsZero)
{
    PhysMem mem;
    std::uint8_t buf[16];
    std::memset(buf, 0xff, sizeof(buf));
    mem.read(0x1234, buf, sizeof(buf));
    for (std::uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(PhysMem, RoundTripWithinPage)
{
    PhysMem mem;
    const char *msg = "hello scratchpad";
    mem.write(0x100, msg, 17);
    char out[17];
    mem.read(0x100, out, 17);
    EXPECT_STREQ(out, msg);
}

TEST(PhysMem, RoundTripAcrossPageBoundary)
{
    PhysMem mem;
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr addr = PhysMem::page_size - 123;
    mem.write(addr, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    mem.read(addr, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_GE(mem.touchedPages(), 3u);
}

TEST(PhysMem, TypedAccessors)
{
    PhysMem mem;
    mem.write8(0x10, 0xab);
    mem.write32(0x20, 0xdeadbeef);
    mem.write64(0x30, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read8(0x10), 0xab);
    EXPECT_EQ(mem.read32(0x20), 0xdeadbeefu);
    EXPECT_EQ(mem.read64(0x30), 0x1122334455667788ULL);
}

TEST(PhysMem, FillSetsRange)
{
    PhysMem mem;
    mem.fill(PhysMem::page_size - 8, 16, 0x5a);
    for (Addr a = PhysMem::page_size - 8; a < PhysMem::page_size + 8;
         ++a) {
        EXPECT_EQ(mem.read8(a), 0x5a);
    }
    EXPECT_EQ(mem.read8(PhysMem::page_size + 8), 0);
}

TEST(PhysMem, OverwriteReplacesBytes)
{
    PhysMem mem;
    mem.write32(0x40, 0x11111111);
    mem.write32(0x40, 0x22222222);
    EXPECT_EQ(mem.read32(0x40), 0x22222222u);
}

TEST(PhysMem, HighAddressesWork)
{
    PhysMem mem;
    const Addr high = 0xffff'ffff'0000ULL;
    mem.write64(high, 42);
    EXPECT_EQ(mem.read64(high), 42u);
}

} // namespace
} // namespace snpu
