/**
 * @file
 * Tests for the pluggable ProtectionBackend seam: the factory
 * registry, the SoC's backend assembly, canonical stats parity
 * across backends, the crypto engine's counter-cache/MAC timing,
 * and the DMA engine's controller contract.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/soc.hh"
#include "core/task_runner.hh"
#include "dma/crypto_backend.hh"
#include "dma/dma_engine.hh"
#include "dma/protection_registry.hh"
#include "sim/logging.hh"
#include "workload/model_zoo.hh"

namespace snpu
{
namespace
{

// ---------------------------------------------------------------- //
// Registry                                                         //
// ---------------------------------------------------------------- //

TEST(ProtectionRegistry_, BuiltinsRegistered)
{
    ProtectionRegistry &reg = ProtectionRegistry::global();
    for (const char *name :
         {"passthrough", "iommu", "guarder", "crypto"}) {
        EXPECT_TRUE(reg.known(name)) << name;
    }
    EXPECT_FALSE(reg.known("mpu"));

    const auto names = reg.names();
    ASSERT_EQ(names.size(), 4u);
    // Registration order is stable: error messages and CI loops
    // enumerate deterministically.
    EXPECT_EQ(names[0], "passthrough");
    EXPECT_EQ(names[1], "iommu");
    EXPECT_EQ(names[2], "guarder");
    EXPECT_EQ(names[3], "crypto");

    EXPECT_TRUE(reg.needsPageTable("iommu"));
    EXPECT_FALSE(reg.needsPageTable("guarder"));
    EXPECT_FALSE(reg.needsPageTable("crypto"));
    EXPECT_FALSE(reg.needsPageTable("passthrough"));
}

TEST(ProtectionRegistry_, UnknownNameFatalListsRegistered)
{
    stats::Group g("g");
    MemSystem mem(g);
    SocParams params = makeSystem(SystemKind::normal_npu);
    ProtectionBuildContext ctx{g, params, mem, nullptr, 0};
    try {
        ProtectionRegistry::global().build("not-a-backend", ctx);
        FAIL() << "unknown backend name should be fatal";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("not-a-backend"), std::string::npos);
        // The error lists every registered name.
        EXPECT_NE(msg.find("passthrough"), std::string::npos);
        EXPECT_NE(msg.find("iommu"), std::string::npos);
        EXPECT_NE(msg.find("guarder"), std::string::npos);
        EXPECT_NE(msg.find("crypto"), std::string::npos);
    }
}

TEST(ProtectionRegistry_, CustomRegistrationBuilds)
{
    ProtectionRegistry reg;
    reg.add("passthrough", false,
            [](const ProtectionBuildContext &bctx) {
                return std::make_unique<PassThroughControl>(
                    &bctx.stats);
            });
    EXPECT_TRUE(reg.known("passthrough"));
    EXPECT_EQ(reg.namesJoined(), "passthrough");

    stats::Group g("g");
    MemSystem mem(g);
    SocParams params = makeSystem(SystemKind::normal_npu);
    ProtectionBuildContext ctx{g, params, mem, nullptr, 0};
    auto backend = reg.build("passthrough", ctx);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "passthrough");

    // Re-using a name is fatal.
    EXPECT_THROW(
        reg.add("passthrough", false,
                [](const ProtectionBuildContext &bctx) {
                    return std::make_unique<PassThroughControl>(
                        &bctx.stats);
                }),
        FatalError);
}

TEST(ProtectionRegistry_, BuildRejectsMisnamedInstance)
{
    // A factory whose product does not answer to the registered name
    // would silently break stats naming and the CLI contract.
    ProtectionRegistry reg;
    reg.add("liar", false, [](const ProtectionBuildContext &bctx) {
        return std::make_unique<PassThroughControl>(&bctx.stats);
    });
    stats::Group g("g");
    MemSystem mem(g);
    SocParams params = makeSystem(SystemKind::normal_npu);
    ProtectionBuildContext ctx{g, params, mem, nullptr, 0};
    EXPECT_THROW(reg.build("liar", ctx), FatalError);
}

// ---------------------------------------------------------------- //
// SoC assembly                                                     //
// ---------------------------------------------------------------- //

TEST(SocProtection, UnknownBackendNameIsFatal)
{
    SocParams params = makeSystem(SystemKind::normal_npu);
    params.protection = "bogus";
    EXPECT_THROW(Soc soc(params), FatalError);
}

TEST(SocProtection, SnpuSystemRequiresGuarderBackend)
{
    // The NPU Monitor programs guarder windows; an sNPU system with
    // any other backend cannot boot.
    SocParams params = makeSystem(SystemKind::snpu);
    params.protection = "crypto";
    EXPECT_THROW(Soc soc(params), FatalError);
}

TEST(SocProtection, StatsParityAcrossAllBackends)
{
    // Every backend exports the same canonical counters under the
    // same dotted names, so any two runs diff stat by stat.
    for (const std::string &name :
         ProtectionRegistry::global().names()) {
        SocParams params = makeSystem(
            name == "guarder" ? SystemKind::snpu
            : name == "iommu" ? SystemKind::trustzone_npu
                              : SystemKind::normal_npu);
        params.protection = name;
        Soc soc(params);
        std::ostringstream os;
        soc.stats().dump(os);
        const std::string dump = os.str();
        for (const char *stat :
             {"protection0.checks", "protection0.checked_bytes",
              "protection0.denials", "protection0.denied_bytes",
              "protection0.contexts"}) {
            EXPECT_NE(dump.find(stat), std::string::npos)
                << name << " missing " << stat;
        }
    }
}

TEST(SocProtection, CapabilitiesDescribeEachBackend)
{
    SocParams iommu_params = makeSystem(SystemKind::trustzone_npu);
    Soc iommu_soc(iommu_params);
    const auto iommu_caps = iommu_soc.protection(0).capabilities();
    EXPECT_EQ(iommu_caps.granularity, CheckGranularity::packet);
    EXPECT_TRUE(iommu_caps.translates);
    EXPECT_TRUE(iommu_caps.enforces);
    EXPECT_TRUE(iommu_caps.uses_page_table);
    EXPECT_FALSE(iommu_caps.encrypts);

    Soc guarder_soc(makeSystem(SystemKind::snpu));
    const auto g_caps = guarder_soc.protection(0).capabilities();
    EXPECT_EQ(g_caps.granularity, CheckGranularity::request);
    EXPECT_TRUE(g_caps.enforces);
    EXPECT_TRUE(g_caps.has_windows);
    EXPECT_FALSE(g_caps.uses_page_table);

    SocParams crypto_params = makeSystem(SystemKind::normal_npu);
    crypto_params.protection = "crypto";
    Soc crypto_soc(crypto_params);
    const auto c_caps = crypto_soc.protection(0).capabilities();
    EXPECT_EQ(c_caps.granularity, CheckGranularity::request);
    EXPECT_TRUE(c_caps.enforces);
    EXPECT_TRUE(c_caps.encrypts);
    EXPECT_FALSE(c_caps.translates);

    Soc plain_soc(makeSystem(SystemKind::normal_npu));
    const auto p_caps = plain_soc.protection(0).capabilities();
    EXPECT_FALSE(p_caps.enforces);
    EXPECT_FALSE(p_caps.translates);
    EXPECT_FALSE(p_caps.encrypts);
}

TEST(SocProtection, NarrowingReturnsNullOnKindMismatch)
{
    SocParams params = makeSystem(SystemKind::normal_npu);
    params.protection = "crypto";
    Soc soc(params);
    EXPECT_EQ(soc.protection(0).name(), "crypto");
    EXPECT_EQ(soc.protection(0).asIommu(), nullptr);
    EXPECT_EQ(soc.protection(0).asGuarder(), nullptr);

    Soc snpu_soc(makeSystem(SystemKind::snpu));
    EXPECT_NE(snpu_soc.protection(0).asGuarder(), nullptr);
    EXPECT_EQ(snpu_soc.protection(0).asIommu(), nullptr);
}

// ---------------------------------------------------------------- //
// Crypto backend                                                   //
// ---------------------------------------------------------------- //

struct CryptoFixture : ::testing::Test
{
    CryptoFixture() : crypto(nullptr)
    {
        ProtectionContext ctx;
        ctx.va_base = region_base;
        ctx.pa_base = region_base;
        ctx.bytes = 1u << 20;
        ctx.world = World::normal;
        EXPECT_TRUE(crypto.beginContext(ctx, true).isOk());
    }

    static constexpr Addr region_base = 0x10000;
    CryptoBackend crypto;
};

TEST_F(CryptoFixture, CounterCacheSecondTouchCheaper)
{
    const CryptoBackendParams p; // defaults match the backend's
    const Tick first = crypto.transferOverhead(0, region_base, 256,
                                               MemOp::read);
    const Tick second = crypto.transferOverhead(0, region_base, 256,
                                                MemOp::read);
    // Identical transfer, same 4 KiB page: the only difference is
    // the counter line now hits in the cache.
    EXPECT_EQ(first - second, p.counter_miss_penalty);
    EXPECT_EQ(crypto.counterMisses(), 1u);
    EXPECT_EQ(crypto.counterHits(), 1u);
}

TEST_F(CryptoFixture, OverheadCountsEachTouchedPage)
{
    // A transfer spanning four fresh pages fetches four counter
    // lines; a same-size transfer on one warm page fetches none.
    const Tick cold = crypto.transferOverhead(
        0, region_base + (1u << 12), 4 * (1u << 12), MemOp::read);
    const Tick warm = crypto.transferOverhead(
        0, region_base + (1u << 12), 4 * (1u << 12), MemOp::read);
    const CryptoBackendParams p;
    EXPECT_EQ(cold - warm, 4 * p.counter_miss_penalty);
}

TEST_F(CryptoFixture, MacGapScalesWithBytes)
{
    // SHA throughput (32 B/c) is half the DMA stream (64 B/c), so
    // the per-transfer gap grows linearly with size. Warm the pages
    // first so only the MAC term differs.
    crypto.transferOverhead(0, region_base, 1u << 16, MemOp::read);
    const Tick small = crypto.transferOverhead(0, region_base, 1024,
                                               MemOp::read);
    const Tick large = crypto.transferOverhead(0, region_base,
                                               1u << 16, MemOp::read);
    const CryptoBackendParams p;
    // gap(bytes) = bytes/32 - bytes/64 = bytes/64
    EXPECT_EQ(large - small,
              static_cast<Tick>((1u << 16) / 64 - 1024 / 64));
    EXPECT_GT(large, small);
    (void)p;
}

TEST_F(CryptoFixture, WriteBumpsRegionVersionReadDoesNot)
{
    EXPECT_EQ(crypto.versionBumps(), 0u);
    crypto.transferOverhead(0, region_base, 256, MemOp::read);
    EXPECT_EQ(crypto.versionBumps(), 0u);
    crypto.transferOverhead(0, region_base, 256, MemOp::write);
    EXPECT_EQ(crypto.versionBumps(), 1u);
}

TEST_F(CryptoFixture, DeniesOutsideKeyedRegion)
{
    const Translation inside =
        crypto.translate(0, region_base, 256, MemOp::read,
                         World::normal);
    EXPECT_TRUE(inside.ok);
    EXPECT_EQ(inside.paddr, region_base); // identity addressing

    const Translation outside = crypto.translate(
        0, region_base + (2u << 20), 256, MemOp::read, World::normal);
    EXPECT_FALSE(outside.ok);
    EXPECT_EQ(crypto.denyCount(), 1u);
}

TEST_F(CryptoFixture, EndContextRetiresRegions)
{
    EXPECT_TRUE(crypto.translate(0, region_base, 64, MemOp::read,
                                 World::normal)
                    .ok);
    EXPECT_TRUE(crypto.endContext(true).isOk());
    EXPECT_FALSE(crypto.translate(0, region_base, 64, MemOp::read,
                                  World::normal)
                     .ok);
}

TEST(CryptoBackendTest, SecureRegionRejectsNormalWorld)
{
    CryptoBackend crypto(nullptr);
    ProtectionContext ctx;
    ctx.va_base = 0x4000;
    ctx.pa_base = 0x4000;
    ctx.bytes = 1u << 16;
    ctx.world = World::secure;
    ASSERT_TRUE(crypto.beginContext(ctx, true).isOk());

    EXPECT_TRUE(crypto.translate(0, 0x4000, 64, MemOp::read,
                                 World::secure)
                    .ok);
    EXPECT_FALSE(crypto.translate(0, 0x4000, 64, MemOp::read,
                                  World::normal)
                     .ok);
}

TEST(CryptoBackendTest, KeyingRequiresSecurePrivilege)
{
    CryptoBackend crypto(nullptr);
    ProtectionContext ctx;
    ctx.pa_base = 0x4000;
    ctx.bytes = 4096;
    EXPECT_FALSE(crypto.beginContext(ctx, false).isOk());
    EXPECT_FALSE(crypto.endContext(false).isOk());
}

TEST(CryptoBackendTest, RekeyingChangesRegionTag)
{
    // The HMAC-SHA256 region tag binds the version: re-provisioning
    // the same window yields a different tag (freshness).
    CryptoBackend crypto(nullptr);
    ProtectionContext ctx;
    ctx.va_base = 0x8000;
    ctx.pa_base = 0x8000;
    ctx.bytes = 1u << 16;
    ASSERT_TRUE(crypto.beginContext(ctx, true).isOk());
    const Digest first = crypto.regionTag();
    ASSERT_TRUE(crypto.beginContext(ctx, true).isOk());
    const Digest second = crypto.regionTag();
    EXPECT_NE(first, second);
}

TEST(CryptoBackendTest, InjectedFaultDeniesViaBaseProbe)
{
    CryptoBackend crypto(nullptr);
    ProtectionContext ctx;
    ctx.va_base = 0x4000;
    ctx.pa_base = 0x4000;
    ctx.bytes = 4096;
    ASSERT_TRUE(crypto.beginContext(ctx, true).isOk());

    FaultPlan plan;
    FaultSpec spec;
    spec.site = FaultSite::protection_check;
    spec.nth = 1;
    plan.faults.push_back(spec);
    FaultInjector inj(plan);
    crypto.armFaults(&inj);

    EXPECT_FALSE(crypto.translate(0, 0x4000, 64, MemOp::read,
                                  World::normal)
                     .ok);
    EXPECT_EQ(crypto.denyCount(), 1u);
    crypto.armFaults(nullptr);
    EXPECT_TRUE(crypto.translate(0, 0x4000, 64, MemOp::read,
                                 World::normal)
                    .ok);
}

// ---------------------------------------------------------------- //
// Passthrough deny accounting                                      //
// ---------------------------------------------------------------- //

TEST(PassThrough, InjectedFaultCountsCheckAndDenial)
{
    PassThroughControl ctrl;
    FaultPlan plan;
    FaultSpec spec;
    spec.site = FaultSite::protection_check;
    spec.nth = 1;
    plan.faults.push_back(spec);
    FaultInjector inj(plan);
    ctrl.armFaults(&inj);

    const Translation denied =
        ctrl.translate(7, 0x100, 128, MemOp::read, World::normal);
    EXPECT_FALSE(denied.ok);
    EXPECT_GE(denied.ready, 7u);
    EXPECT_EQ(ctrl.checkCount(), 1u);
    EXPECT_EQ(ctrl.denyCount(), 1u);

    const Translation ok =
        ctrl.translate(8, 0x100, 128, MemOp::read, World::normal);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ctrl.checkCount(), 2u);
    EXPECT_EQ(ctrl.denyCount(), 1u);
}

// ---------------------------------------------------------------- //
// DMA engine contract                                              //
// ---------------------------------------------------------------- //

/** A broken controller whose ready tick precedes the ask tick. */
class TimeTravelControl : public AccessControl
{
  public:
    CheckGranularity granularity() const override
    {
        return CheckGranularity::request;
    }

    Translation
    translate(Tick when, Addr vaddr, std::uint32_t, MemOp,
              World) override
    {
        return Translation{true, vaddr, when > 0 ? when - 1 : 0};
    }

    std::uint64_t checkCount() const override { return 0; }
    std::uint64_t denyCount() const override { return 0; }
};

TEST(DmaContract, EngineAssertsReadyNotBeforeAsk)
{
    stats::Group g("g");
    MemSystem mem(g);
    TimeTravelControl ctrl;
    DmaEngine engine(g, mem, ctrl);
    DmaRequest req{mem.map().dram().base, 256, MemOp::read,
                   World::normal};
    EXPECT_THROW(engine.transfer(10, req, nullptr), PanicError);
}

/** Overhead-only controller: identity translate, fixed tail. */
class TailControl : public AccessControl
{
  public:
    Tick tail = 0;

    CheckGranularity granularity() const override
    {
        return CheckGranularity::request;
    }

    Translation
    translate(Tick when, Addr vaddr, std::uint32_t, MemOp,
              World) override
    {
        return Translation{true, vaddr, when};
    }

    Tick
    transferOverhead(Tick, Addr, std::uint32_t, MemOp) override
    {
        return tail;
    }

    std::uint64_t checkCount() const override { return 0; }
    std::uint64_t denyCount() const override { return 0; }
};

TEST(DmaContract, TransferOverheadDelaysCompletion)
{
    stats::Group g("g");
    MemSystem mem(g);
    TailControl plain;
    DmaEngine base_engine(g, mem, plain);
    DmaRequest req{mem.map().dram().base, 1024, MemOp::read,
                   World::normal};
    const Tick base_done = base_engine.transfer(0, req, nullptr).done;

    stats::Group g2("g2");
    MemSystem mem2(g2);
    TailControl taxed;
    taxed.tail = 777;
    DmaEngine taxed_engine(g2, mem2, taxed);
    DmaRequest req2{mem2.map().dram().base, 1024, MemOp::read,
                    World::normal};
    const Tick taxed_done =
        taxed_engine.transfer(0, req2, nullptr).done;
    EXPECT_EQ(taxed_done, base_done + 777);
}

// ---------------------------------------------------------------- //
// Three-way integration                                            //
// ---------------------------------------------------------------- //

TEST(Integration, ThreeBackendsRunWithDistinctTiming)
{
    auto run = [](SystemKind kind, const std::string &protection) {
        SocParams params = makeSystem(kind);
        if (!protection.empty())
            params.protection = protection;
        Soc soc(params);
        TaskRunner runner(soc);
        NpuTask task = NpuTask::fromModel(ModelId::yololite);
        task.model = task.model.scaled(16);
        RunResult res = runner.run(task);
        EXPECT_TRUE(res.ok()) << protection << ": " << res.error();
        return res;
    };

    const RunResult iommu = run(SystemKind::trustzone_npu, "");
    const RunResult guarder = run(SystemKind::snpu, "");
    const RunResult crypto = run(SystemKind::normal_npu, "crypto");

    // Timing separates the three protection mechanisms.
    EXPECT_NE(iommu.cycles, guarder.cycles);
    EXPECT_NE(crypto.cycles, guarder.cycles);
    // The crypto engine charges bandwidth the guarder does not.
    EXPECT_GT(crypto.cycles, guarder.cycles);
    // Packet-granular checking needs far more lookups than
    // request-granular (Fig 13b: a few percent).
    EXPECT_GT(iommu.check_requests, 10 * guarder.check_requests);
    EXPECT_GT(guarder.check_requests, 0u);
    EXPECT_GT(crypto.check_requests, 0u);
}

} // namespace
} // namespace snpu
