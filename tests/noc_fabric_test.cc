/**
 * @file
 * Unit tests for the peephole router-controller protocol (Fig 12)
 * and the software NoC baseline.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/mem_system.hh"
#include "noc/mesh.hh"
#include "noc/router_controller.hh"
#include "noc/software_noc.hh"
#include "sim/stats.hh"
#include "spad/scratchpad.hh"

namespace snpu
{
namespace
{

struct FabricFixture : ::testing::Test
{
    FabricFixture()
        : stats("g"), mesh(stats),
          fabric(stats, mesh, NocMode::peephole)
    {
        SpadParams p;
        p.rows = 256;
        p.row_bytes = 16;
        p.mode = IsolationMode::id_based;
        for (std::uint32_t i = 0; i < mesh.nodes(); ++i) {
            spad_groups.push_back(std::make_unique<stats::Group>(
                stats, "spad" + std::to_string(i)));
            spads.push_back(
                std::make_unique<Scratchpad>(*spad_groups.back(), p));
            fabric.attachScratchpad(i, spads.back().get());
        }
    }

    void
    fillRow(std::uint32_t core, std::uint32_t row, std::uint8_t value,
            World world)
    {
        std::uint8_t buf[16];
        std::memset(buf, value, sizeof(buf));
        ASSERT_EQ(spads[core]->write(world, row, buf), SpadStatus::ok);
    }

    stats::Group stats;
    Mesh mesh;
    NocFabric fabric;
    std::vector<std::unique_ptr<stats::Group>> spad_groups;
    std::vector<std::unique_ptr<Scratchpad>> spads;
};

TEST_F(FabricFixture, SameWorldTransferSucceeds)
{
    fillRow(0, 0, 0x42, World::normal);
    NocResult res = fabric.transfer(0, 0, 1, 0, 0, 1);
    EXPECT_TRUE(res.ok);
    std::uint8_t out[16];
    ASSERT_EQ(spads[1]->read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x42);
    EXPECT_EQ(fabric.authHandshakes(), 1u);
    EXPECT_EQ(fabric.authRejects(), 0u);
}

TEST_F(FabricFixture, CrossWorldTransferRejectedByPeephole)
{
    mesh.setNodeWorld(0, World::secure);
    fillRow(0, 0, 0x66, World::secure);
    // Destination core 1 stays in the normal world.
    NocResult res = fabric.transfer(0, 0, 1, 0, 0, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.auth_failed);
    EXPECT_EQ(fabric.authRejects(), 1u);
    // Nothing landed at the destination.
    std::uint8_t out[16];
    ASSERT_EQ(spads[1]->read(World::normal, 0, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0);
}

TEST_F(FabricFixture, SecureToSecureSucceeds)
{
    mesh.setNodeWorld(0, World::secure);
    mesh.setNodeWorld(1, World::secure);
    fillRow(0, 3, 0x77, World::secure);
    NocResult res = fabric.transfer(0, 0, 1, 3, 3, 1);
    EXPECT_TRUE(res.ok);
    std::uint8_t out[16];
    ASSERT_EQ(spads[1]->read(World::secure, 3, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x77);
}

TEST_F(FabricFixture, HandshakeHappensOncePerLockedChannel)
{
    fillRow(0, 0, 1, World::normal);
    fabric.transfer(0, 0, 1, 0, 0, 1);
    fabric.transfer(1000, 0, 1, 0, 0, 1);
    fabric.transfer(2000, 0, 1, 0, 0, 1);
    EXPECT_EQ(fabric.authHandshakes(), 1u);
}

TEST_F(FabricFixture, LockedChannelRejectsForeignSender)
{
    fillRow(0, 0, 1, World::normal);
    fillRow(2, 0, 2, World::normal);
    fabric.transfer(0, 0, 1, 0, 0, 1); // core 0 locks channel to 1
    NocResult res = fabric.transfer(10, 2, 1, 0, 0, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.auth_failed);
    fabric.unlockAll();
    NocResult after = fabric.transfer(20, 2, 1, 0, 0, 1);
    EXPECT_TRUE(after.ok);
}

TEST_F(FabricFixture, PeepholeSteadyStateMatchesUnauthorized)
{
    // After the one-time handshake, per-transfer latency under the
    // peephole equals the unauthorized NoC (Fig 16's key claim).
    fillRow(0, 0, 1, World::normal);
    fabric.transfer(0, 0, 1, 0, 0, 1); // pay the handshake
    const Tick t0 = 10000;
    NocResult locked = fabric.transfer(t0, 0, 1, 0, 0, 32);

    stats::Group stats2("g2");
    Mesh mesh2(stats2);
    NocFabric unauth(stats2, mesh2, NocMode::unauthorized);
    SpadParams p;
    p.rows = 256;
    p.row_bytes = 16;
    stats::Group g_s0(stats2, "s0"), g_s1(stats2, "s1");
    Scratchpad s0(g_s0, p), s1(g_s1, p);
    unauth.attachScratchpad(0, &s0);
    unauth.attachScratchpad(1, &s1);
    std::uint8_t buf[16] = {1};
    s0.write(World::normal, 0, buf);
    NocResult raw = unauth.transfer(t0, 0, 1, 0, 0, 32);

    EXPECT_EQ(locked.done - t0, raw.done - t0);
}

TEST_F(FabricFixture, UnauthorizedModeSkipsAuthentication)
{
    fabric.setMode(NocMode::unauthorized);
    mesh.setNodeWorld(0, World::secure);
    fillRow(0, 0, 0x13, World::secure);
    // The insecure NoC happily delivers cross-world data.
    NocResult res = fabric.transfer(0, 0, 1, 0, 0, 1);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(fabric.authHandshakes(), 0u);
}

TEST_F(FabricFixture, TransferLatencyScalesWithDistance)
{
    fillRow(0, 0, 1, World::normal);
    NocResult near = fabric.transfer(0, 0, 1, 0, 0, 4);
    stats::Group s2("g2");
    Mesh m2(s2);
    NocFabric f2(s2, m2, NocMode::peephole);
    SpadParams p;
    p.rows = 256;
    p.row_bytes = 16;
    stats::Group g_a(s2, "a"), g_b(s2, "b");
    Scratchpad a(g_a, p), b(g_b, p);
    f2.attachScratchpad(0, &a);
    f2.attachScratchpad(9, &b);
    std::uint8_t buf[16] = {1};
    a.write(World::normal, 0, buf);
    NocResult far = f2.transfer(0, 0, 9, 0, 0, 4);
    EXPECT_GT(far.done, near.done);
}

struct SwNocFixture : ::testing::Test
{
    SwNocFixture()
        : stats("g"), mem(stats),
          swnoc(stats, mem,
                AddrRange{mem.map().npuArena(World::normal).base,
                          1u << 20})
    {
        SpadParams p;
        p.rows = 256;
        p.row_bytes = 16;
        src_group = std::make_unique<stats::Group>(stats, "src");
        dst_group = std::make_unique<stats::Group>(stats, "dst");
        src = std::make_unique<Scratchpad>(*src_group, p);
        dst = std::make_unique<Scratchpad>(*dst_group, p);
    }

    stats::Group stats;
    MemSystem mem;
    SoftwareNoc swnoc;
    std::unique_ptr<stats::Group> src_group;
    std::unique_ptr<stats::Group> dst_group;
    std::unique_ptr<Scratchpad> src;
    std::unique_ptr<Scratchpad> dst;
};

TEST_F(SwNocFixture, DataRoundTripsThroughMemory)
{
    std::uint8_t buf[16];
    std::memset(buf, 0x3c, sizeof(buf));
    src->write(World::normal, 5, buf);
    NocResult res = swnoc.transfer(0, *src, *dst, 5, 9, 1,
                                   World::normal);
    EXPECT_TRUE(res.ok);
    std::uint8_t out[16];
    ASSERT_EQ(dst->read(World::normal, 9, out), SpadStatus::ok);
    EXPECT_EQ(out[0], 0x3c);
    EXPECT_EQ(swnoc.bytesMoved(), 16u);
}

TEST_F(SwNocFixture, SlowerThanDirectNoc)
{
    std::uint8_t buf[16] = {1};
    for (std::uint32_t r = 0; r < 32; ++r)
        src->write(World::normal, r, buf);
    NocResult sw = swnoc.transfer(0, *src, *dst, 0, 0, 32,
                                  World::normal);

    stats::Group s2("g2");
    Mesh mesh(s2);
    NocFabric fabric(s2, mesh, NocMode::unauthorized);
    SpadParams p;
    p.rows = 256;
    p.row_bytes = 16;
    stats::Group g_a(s2, "a"), g_b(s2, "b");
    Scratchpad a(g_a, p), b(g_b, p);
    fabric.attachScratchpad(0, &a);
    fabric.attachScratchpad(1, &b);
    for (std::uint32_t r = 0; r < 32; ++r)
        a.write(World::normal, r, buf);
    NocResult direct = fabric.transfer(0, 0, 1, 0, 0, 32);

    EXPECT_GT(sw.done, 2 * direct.done);
}

TEST_F(SwNocFixture, WorldRulesStillApplyToScratchpads)
{
    std::uint8_t buf[16] = {1};
    src->write(World::secure, 0, buf);
    // A normal-world transfer cannot read the secure row.
    NocResult res = swnoc.transfer(0, *src, *dst, 0, 0, 1,
                                   World::normal);
    EXPECT_FALSE(res.ok);
}

} // namespace
} // namespace snpu
