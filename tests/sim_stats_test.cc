/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

TEST(Stats, ScalarAccumulates)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "a scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Group group("g");
    stats::Average a(group, "a", "an average");
    a.sample(10);
    a.sample(20);
    a.sample(0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramBucketsSamples)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "a histogram", 0, 100, 10);
    h.sample(5);    // bucket 0
    h.sample(15);   // bucket 1
    h.sample(95);   // bucket 9
    h.sample(-1);   // underflow
    h.sample(100);  // overflow (hi is exclusive)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Stats, HistogramPercentileInterpolates)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    // One sample per bucket: the quantiles walk the bucket tops.
    for (int v = 5; v < 100; v += 10)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
}

TEST(Stats, HistogramPercentileWithinOneBucket)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    for (int i = 0; i < 4; ++i)
        h.sample(25); // all mass in bucket [20, 30)
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 22.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 30.0);
}

TEST(Stats, HistogramPercentileClampsOutOfRange)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // no samples
    h.sample(-5);
    h.sample(-5);
    h.sample(150);
    h.sample(150);
    // Underflow pins to lo, overflow to hi: the histogram keeps no
    // detail beyond its range.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Stats, HistogramTailPercentilesOrdered)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    for (int i = 0; i < 99; ++i)
        h.sample(5);
    h.sample(95);
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p999 = h.percentile(0.999);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p999);
    EXPECT_LT(p50, 10.0);   // bulk sits in the first bucket
    EXPECT_GT(p999, 90.0);  // the straggler shows up in the tail
}

TEST(Stats, HistogramRejectsBadGeometry)
{
    stats::Group group("g");
    EXPECT_THROW(stats::Histogram(group, "h", "bad", 10, 10, 4),
                 PanicError);
    EXPECT_THROW(stats::Histogram(group, "h", "bad", 0, 10, 0),
                 PanicError);
}

TEST(Stats, GroupDumpAndFind)
{
    stats::Group group("soc");
    stats::Scalar s(group, "cycles", "total cycles");
    s = 42;
    EXPECT_NE(group.find("cycles"), nullptr);
    EXPECT_EQ(group.find("nonexistent"), nullptr);

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("soc.cycles = 42"), std::string::npos);
    EXPECT_NE(os.str().find("total cycles"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "scalar");
    stats::Average a(group, "a", "avg");
    s = 5;
    a.sample(3);
    group.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, RenderIntegersWithoutDecimals)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "scalar");
    s = 1234567;
    EXPECT_EQ(s.render(), "1234567");
}

TEST(Stats, HistogramNonFiniteSamples)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    h.sample(50);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 4u);
    // NaN and +inf land in overflow, -inf in underflow; none of
    // them reaches the bucket cast (which would be UB for NaN).
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    // The mean covers finite samples only.
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
    h.reset();
    h.sample(50);
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
}

TEST(Stats, DuplicateStatNamePanics)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "first");
    EXPECT_THROW(stats::Scalar(group, "s", "dup"), PanicError);
}

TEST(Stats, DuplicateChildGroupNamePanics)
{
    stats::Group group("g");
    stats::Group child(group, "child");
    EXPECT_THROW(stats::Group(group, "child"), PanicError);
}

TEST(Stats, StatAndChildNameCollisionPanics)
{
    stats::Group group("g");
    stats::Group child(group, "x");
    EXPECT_THROW(stats::Scalar(group, "x", "collides"), PanicError);

    stats::Group other("g2");
    stats::Scalar s(other, "y", "first");
    EXPECT_THROW(stats::Group(other, "y"), PanicError);
}

TEST(Stats, StatDestructionAllowsNameReuse)
{
    stats::Group group("g");
    {
        stats::Scalar first(group, "s", "first");
        first = 1;
        EXPECT_EQ(group.all().size(), 1u);
    }
    // The destructor deregistered: no dangling pointer, no
    // duplicate-name panic for the successor.
    EXPECT_TRUE(group.all().empty());
    stats::Scalar second(group, "s", "second");
    EXPECT_EQ(group.all().size(), 1u);
    EXPECT_EQ(group.find("s"), &second);
}

TEST(Stats, ChildGroupsDumpDottedPaths)
{
    stats::Group root("soc");
    stats::Group core(root, "core0");
    stats::Scalar reads(core, "spad_reads", "reads");
    reads = 3;

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("soc.core0.spad_reads = 3"),
              std::string::npos);

    // Dotted descent and bare-name recursive lookup both resolve.
    EXPECT_EQ(root.find("core0.spad_reads"), &reads);
    EXPECT_EQ(root.find("spad_reads"), &reads);
    EXPECT_EQ(root.find("core1.spad_reads"), nullptr);

    root.resetAll();
    EXPECT_DOUBLE_EQ(reads.value(), 0);
}

TEST(Stats, GroupJsonGolden)
{
    stats::Group root("soc");
    stats::Scalar cycles(root, "cycles", "total");
    cycles = 42;
    stats::Group core(root, "core0");
    stats::Scalar reads(core, "spad_reads", "reads");
    reads = 3;

    std::ostringstream os;
    root.dumpJson(os);
    const std::string expected = "{\n"
                                 "  \"name\": \"soc\",\n"
                                 "  \"stats\": {\n"
                                 "    \"cycles\": 42\n"
                                 "  },\n"
                                 "  \"groups\": [{\n"
                                 "    \"name\": \"core0\",\n"
                                 "    \"stats\": {\n"
                                 "      \"spad_reads\": 3\n"
                                 "    }\n"
                                 "  }]\n"
                                 "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Stats, StatJsonValues)
{
    stats::Group group("g");
    stats::Average a(group, "a", "avg");
    a.sample(1);
    a.sample(2);
    std::ostringstream as;
    a.json(as);
    EXPECT_EQ(as.str(),
              "{\"count\": 2, \"mean\": 1.5, \"min\": 1, "
              "\"max\": 2}");

    stats::Histogram h(group, "h", "hist", 0, 10, 2);
    h.sample(1);
    h.sample(11);
    std::ostringstream hs;
    h.json(hs);
    EXPECT_NE(hs.str().find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(hs.str().find("\"buckets\": [1, 0]"),
              std::string::npos);
}

TEST(Stats, JsonEscapesControlCharacters)
{
    std::ostringstream os;
    stats::jsonEscape(os, "a\"b\\c\nd");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Stats, RegistryDumpsEveryGroup)
{
    stats::Registry reg;
    stats::Group a("a");
    stats::Group b("b");
    stats::Scalar sa(a, "x", "d");
    stats::Scalar sb(b, "y", "d");
    sa = 1;
    sb = 2;
    reg.add(a);
    reg.add(b);
    EXPECT_THROW(reg.add(a), PanicError);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.x = 1"), std::string::npos);
    EXPECT_NE(os.str().find("b.y = 2"), std::string::npos);

    std::ostringstream js;
    reg.dumpJson(js);
    EXPECT_NE(js.str().find("{\"groups\": ["), std::string::npos);
    EXPECT_NE(js.str().find("\"x\": 1"), std::string::npos);
    EXPECT_NE(js.str().find("\"y\": 2"), std::string::npos);

    reg.resetAll();
    EXPECT_DOUBLE_EQ(sa.value(), 0);
    EXPECT_DOUBLE_EQ(sb.value(), 0);

    reg.remove(b);
    ASSERT_EQ(reg.groups().size(), 1u);
    EXPECT_EQ(reg.groups()[0], &a);
}

} // namespace
} // namespace snpu
