/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

TEST(Stats, ScalarAccumulates)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "a scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Group group("g");
    stats::Average a(group, "a", "an average");
    a.sample(10);
    a.sample(20);
    a.sample(0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramBucketsSamples)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "a histogram", 0, 100, 10);
    h.sample(5);    // bucket 0
    h.sample(15);   // bucket 1
    h.sample(95);   // bucket 9
    h.sample(-1);   // underflow
    h.sample(100);  // overflow (hi is exclusive)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Stats, HistogramPercentileInterpolates)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    // One sample per bucket: the quantiles walk the bucket tops.
    for (int v = 5; v < 100; v += 10)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
}

TEST(Stats, HistogramPercentileWithinOneBucket)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    for (int i = 0; i < 4; ++i)
        h.sample(25); // all mass in bucket [20, 30)
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 22.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 30.0);
}

TEST(Stats, HistogramPercentileClampsOutOfRange)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // no samples
    h.sample(-5);
    h.sample(-5);
    h.sample(150);
    h.sample(150);
    // Underflow pins to lo, overflow to hi: the histogram keeps no
    // detail beyond its range.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Stats, HistogramTailPercentilesOrdered)
{
    stats::Group group("g");
    stats::Histogram h(group, "h", "latency", 0, 100, 10);
    for (int i = 0; i < 99; ++i)
        h.sample(5);
    h.sample(95);
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p999 = h.percentile(0.999);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p999);
    EXPECT_LT(p50, 10.0);   // bulk sits in the first bucket
    EXPECT_GT(p999, 90.0);  // the straggler shows up in the tail
}

TEST(Stats, HistogramRejectsBadGeometry)
{
    stats::Group group("g");
    EXPECT_THROW(stats::Histogram(group, "h", "bad", 10, 10, 4),
                 PanicError);
    EXPECT_THROW(stats::Histogram(group, "h", "bad", 0, 10, 0),
                 PanicError);
}

TEST(Stats, GroupDumpAndFind)
{
    stats::Group group("soc");
    stats::Scalar s(group, "cycles", "total cycles");
    s = 42;
    EXPECT_NE(group.find("cycles"), nullptr);
    EXPECT_EQ(group.find("nonexistent"), nullptr);

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("soc.cycles = 42"), std::string::npos);
    EXPECT_NE(os.str().find("total cycles"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "scalar");
    stats::Average a(group, "a", "avg");
    s = 5;
    a.sample(3);
    group.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, RenderIntegersWithoutDecimals)
{
    stats::Group group("g");
    stats::Scalar s(group, "s", "scalar");
    s = 1234567;
    EXPECT_EQ(s.render(), "1234567");
}

} // namespace
} // namespace snpu
