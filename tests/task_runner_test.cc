/**
 * @file
 * Integration tests for the task runner: end-to-end model execution
 * on each comparative system and the key cross-system relations the
 * paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "core/systems.hh"
#include "core/task_runner.hh"

namespace snpu
{
namespace
{

SystemOverrides
fastOverrides()
{
    SystemOverrides o;
    o.model_scale = 8; // shrink M dims for quick tests
    return o;
}

TEST(TaskRunner, RunsOnAllSystems)
{
    for (SystemKind kind :
         {SystemKind::normal_npu, SystemKind::trustzone_npu,
          SystemKind::snpu}) {
        RunResult res = measureModel(kind, ModelId::yololite,
                                     fastOverrides());
        EXPECT_TRUE(res.ok()) << systemKindName(kind) << ": "
                            << res.error();
        EXPECT_GT(res.cycles, 0u);
        EXPECT_GT(res.macs, 0u);
        EXPECT_GT(res.dma_bytes, 0u);
    }
}

TEST(TaskRunner, GuarderChecksFarFewerThanIommu)
{
    RunResult tz = measureModel(SystemKind::trustzone_npu,
                                ModelId::mobilenet, fastOverrides());
    RunResult sn = measureModel(SystemKind::snpu, ModelId::mobilenet,
                                fastOverrides());
    ASSERT_TRUE(tz.ok()) << tz.error();
    ASSERT_TRUE(sn.ok()) << sn.error();
    // Fig 13b: request-level checking needs only a few percent of
    // the packet-level lookups.
    EXPECT_LT(sn.check_requests * 5, tz.check_requests);
}

TEST(TaskRunner, SnpuNotSlowerThanNormal)
{
    RunResult normal = measureModel(SystemKind::normal_npu,
                                    ModelId::yololite,
                                    fastOverrides());
    RunResult sn = measureModel(SystemKind::snpu, ModelId::yololite,
                                fastOverrides());
    ASSERT_TRUE(normal.ok());
    ASSERT_TRUE(sn.ok());
    // The Guarder adds (almost) zero runtime cost.
    EXPECT_LE(sn.cycles, normal.cycles * 101 / 100);
}

TEST(TaskRunner, IommuSlowsDownSmallTlb)
{
    SystemOverrides small = fastOverrides();
    small.iotlb_entries = 4;
    SystemOverrides big = fastOverrides();
    big.iotlb_entries = 32;
    RunResult slow = measureModel(SystemKind::trustzone_npu,
                                  ModelId::googlenet, small);
    RunResult fast = measureModel(SystemKind::trustzone_npu,
                                  ModelId::googlenet, big);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(TaskRunner, FlushGranularityOrdering)
{
    RunResult none = measureModel(SystemKind::trustzone_npu,
                                  ModelId::yololite, fastOverrides(),
                                  FlushGranularity::none);
    RunResult tile = measureModel(SystemKind::trustzone_npu,
                                  ModelId::yololite, fastOverrides(),
                                  FlushGranularity::tile);
    RunResult layer = measureModel(SystemKind::trustzone_npu,
                                   ModelId::yololite, fastOverrides(),
                                   FlushGranularity::layer);
    ASSERT_TRUE(none.ok());
    ASSERT_TRUE(tile.ok());
    ASSERT_TRUE(layer.ok());
    EXPECT_GT(tile.cycles, layer.cycles);
    EXPECT_GT(layer.cycles, none.cycles);
    EXPECT_GT(tile.flush_cycles, 0u);
    EXPECT_EQ(none.flush_cycles, 0u);
}

TEST(TaskRunner, SecureTaskRunsOnSnpu)
{
    auto soc = buildSoc(SystemKind::snpu);
    TaskRunner runner(*soc);
    NpuTask task = NpuTask::fromModel(ModelId::yololite,
                                      World::secure);
    task.model = task.model.scaled(8);
    RunResult res = runner.run(task);
    EXPECT_TRUE(res.ok()) << res.error();
}

TEST(TaskRunner, PartitionShrinksEffectiveSpad)
{
    SocParams params = makeSystem(SystemKind::trustzone_npu);
    params.spad_isolation = IsolationMode::partition;
    params.partition_secure_frac = 0.25;
    Soc soc(params);
    TaskRunner runner(soc);
    EXPECT_EQ(runner.effectiveSpadRows(World::secure),
              params.spadRows() / 4);
    EXPECT_EQ(runner.effectiveSpadRows(World::normal),
              params.spadRows() - params.spadRows() / 4);
}

TEST(TaskRunner, SpadOverrideChangesCompilation)
{
    auto soc = buildSoc(SystemKind::snpu);
    TaskRunner runner(*soc);
    NpuTask task = NpuTask::fromModel(ModelId::alexnet);
    task.model = task.model.scaled(8);
    const NpuProgram full = runner.compile(task);
    const NpuProgram quarter = runner.compile(task, 4096);
    EXPECT_GT(quarter.code.size(), full.code.size());
}

TEST(TaskRunner, UtilizationIsSane)
{
    RunResult res = measureModel(SystemKind::normal_npu,
                                 ModelId::resnet, fastOverrides());
    ASSERT_TRUE(res.ok());
    const double util = res.utilization(256);
    EXPECT_GT(util, 0.01);
    EXPECT_LT(util, 1.0);
}

} // namespace
} // namespace snpu
