/**
 * @file
 * Unit tests for the mesh interconnect: XY routing, wormhole timing,
 * link contention, and node world tracking.
 */

#include <gtest/gtest.h>

#include "noc/flit.hh"
#include "noc/mesh.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct MeshFixture : ::testing::Test
{
    MeshFixture() : stats("g"), mesh(stats) {}

    stats::Group stats;
    Mesh mesh; // default 5x2
};

TEST_F(MeshFixture, GeometryAndHops)
{
    EXPECT_EQ(mesh.nodes(), 10u);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 4), 4u);
    EXPECT_EQ(mesh.hops(0, 5), 1u);
    EXPECT_EQ(mesh.hops(0, 9), 5u);
    EXPECT_EQ(mesh.hops(9, 0), 5u);
}

TEST_F(MeshFixture, XyRouteIsXThenY)
{
    const auto route = mesh.routeNodes(0, 7);
    // 0 -> 1 -> 2 (X first) -> 7 (then Y).
    EXPECT_EQ(route,
              (std::vector<std::uint32_t>{0, 1, 2, 7}));
}

TEST_F(MeshFixture, RouteEndpointsAlwaysPresent)
{
    for (std::uint32_t s = 0; s < mesh.nodes(); ++s) {
        for (std::uint32_t d = 0; d < mesh.nodes(); ++d) {
            const auto route = mesh.routeNodes(s, d);
            EXPECT_EQ(route.front(), s);
            EXPECT_EQ(route.back(), d);
            EXPECT_EQ(route.size(), mesh.hops(s, d) + 1);
        }
    }
}

TEST_F(MeshFixture, TraversalLatencyIsHopsPlusFlits)
{
    // 4 hops, 10 flits: head arrives after 4 hop cycles, tail 9
    // cycles later.
    const Tick done = mesh.traverse(100, 0, 4, 10);
    EXPECT_EQ(done, 100u + 4 + 10 - 1);
}

TEST_F(MeshFixture, SelfTransferIsOneCycle)
{
    EXPECT_EQ(mesh.traverse(50, 3, 3, 8), 51u);
}

TEST_F(MeshFixture, ContendingPacketsSerializeOnSharedLink)
{
    // Both packets use link 0->1.
    const Tick a = mesh.traverse(0, 0, 2, 16);
    const Tick b = mesh.traverse(0, 0, 1, 16);
    EXPECT_GT(b, 16u); // the second waits for the first's tail
    EXPECT_GT(a, 0u);
}

TEST_F(MeshFixture, DisjointRoutesDoNotInterfere)
{
    const Tick a = mesh.traverse(0, 0, 1, 16);
    const Tick b = mesh.traverse(0, 8, 9, 16);
    EXPECT_EQ(a, b); // same shape, no shared links
}

TEST_F(MeshFixture, ControlPacketIsSingleFlit)
{
    const Tick done = mesh.control(0, 0, 4);
    EXPECT_EQ(done, 4u); // 4 hops, 1 flit
}

TEST_F(MeshFixture, NodeWorldTracking)
{
    EXPECT_EQ(mesh.nodeWorld(3), World::normal);
    mesh.setNodeWorld(3, World::secure);
    EXPECT_EQ(mesh.nodeWorld(3), World::secure);
    EXPECT_THROW(mesh.setNodeWorld(10, World::secure), PanicError);
}

TEST_F(MeshFixture, EmptyPacketPanics)
{
    EXPECT_THROW(mesh.traverse(0, 0, 1, 0), PanicError);
}

TEST(MeshGeometry, FlitsCounted)
{
    stats::Group stats("g");
    Mesh mesh(stats);
    mesh.traverse(0, 0, 1, 7);
    EXPECT_EQ(mesh.flitsMoved(), 7u);
}

TEST(PacketFlits, HeadBodyTail)
{
    EXPECT_EQ(packetFlits(0), 2u);           // head + tail
    EXPECT_EQ(packetFlits(16), 3u);          // one body flit
    EXPECT_EQ(packetFlits(17), 4u);          // two body flits
    EXPECT_EQ(packetFlits(160), 12u);
}

} // namespace
} // namespace snpu
