/**
 * @file
 * Tests for the Fig 18 area model and the §VI-F TCB inventory.
 */

#include <gtest/gtest.h>

#include "core/area_model.hh"
#include "core/tcb_inventory.hh"

namespace snpu
{
namespace
{

TEST(AreaModel, SnpuExtensionsUnderOnePercent)
{
    AreaModel model(makeSystem(SystemKind::snpu));
    const Resources base = model.baselineTile();
    const Resources snpu = model.sReg() + model.sSpad() + model.sNoc();
    const Resources pct = base.percentOver(snpu);
    // The paper's headline: ~1% RAM, negligible LUT/FF impact.
    EXPECT_LT(pct.ram_bits, 1.5);
    EXPECT_LT(pct.luts, 5.0);
    EXPECT_LT(pct.ffs, 5.0);
}

TEST(AreaModel, IommuCostsMoreLogicThanSnpu)
{
    AreaModel model(makeSystem(SystemKind::trustzone_npu));
    const Resources snpu = model.sReg() + model.sSpad() + model.sNoc();
    const Resources iommu = model.iommu();
    EXPECT_GT(iommu.luts, snpu.luts);
}

TEST(AreaModel, SpadBitsDominateSnpuRamDelta)
{
    AreaModel model(makeSystem(SystemKind::snpu));
    EXPECT_GT(model.sSpad().ram_bits, model.sReg().ram_bits);
    EXPECT_GT(model.sSpad().ram_bits, model.sNoc().ram_bits);
}

TEST(AreaModel, ReportHasAllConfigs)
{
    AreaModel model(makeSystem(SystemKind::snpu));
    const auto rows = model.report();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].config, "baseline");
    EXPECT_DOUBLE_EQ(rows[0].percent_over_baseline.luts, 0.0);
    for (const auto &row : rows) {
        EXPECT_GT(row.absolute.luts, 0.0);
        EXPECT_GE(row.percent_over_baseline.luts, 0.0);
    }
}

TEST(AreaModel, LargerIotlbCostsMore)
{
    SocParams small = makeSystem(SystemKind::trustzone_npu);
    small.iotlb_entries = 4;
    SocParams big = makeSystem(SystemKind::trustzone_npu);
    big.iotlb_entries = 32;
    EXPECT_GT(AreaModel(big).iommu().luts,
              AreaModel(small).iommu().luts);
}

TEST(ResourcesOps, ArithmeticWorks)
{
    Resources a{10, 20, 30};
    Resources b{1, 2, 3};
    const Resources sum = a + b;
    EXPECT_DOUBLE_EQ(sum.luts, 11);
    EXPECT_DOUBLE_EQ(sum.ffs, 22);
    EXPECT_DOUBLE_EQ(sum.ram_bits, 33);
    const Resources pct = a.percentOver(b);
    EXPECT_DOUBLE_EQ(pct.luts, 10.0);
}

TEST(TcbInventory, MeasuresRepoSourcesWhenPresent)
{
    // Works from the build tree (tests run in build/tests) and from
    // the repo root; when neither resolves, measured rows vanish.
    const auto inv = tcbInventory("../../src");
    bool has_reference = false;
    for (const auto &c : inv) {
        if (!c.measured) {
            has_reference = true;
            EXPECT_FALSE(c.trusted);
            EXPECT_GT(c.loc, 100000u);
        }
    }
    EXPECT_TRUE(has_reference);
}

TEST(TcbInventory, TrustedFarSmallerThanUntrustedStack)
{
    const auto inv = tcbInventory("../../src");
    const std::uint64_t trusted = trustedLoc(inv);
    std::uint64_t untrusted_reference = 0;
    for (const auto &c : inv) {
        if (!c.trusted && !c.measured)
            untrusted_reference += c.loc;
    }
    // Even if the source dir was not found (trusted == 0), the
    // relation holds trivially; when found, the monitor TCB must be
    // orders of magnitude below the stack it displaces.
    EXPECT_LT(trusted * 20, untrusted_reference);
}

TEST(TcbInventory, MissingRootYieldsOnlyReferences)
{
    const auto inv = tcbInventory("/nonexistent/path");
    for (const auto &c : inv)
        EXPECT_FALSE(c.measured && c.trusted);
}

} // namespace
} // namespace snpu
