/**
 * @file
 * Tests for the NPU Monitor and its shim modules: trampoline
 * validation, trusted allocator, code verifier, secure loader route
 * checks, context setter, and the full launch pipeline.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "sim/stats.hh"
#include "tee/monitor/npu_monitor.hh"

namespace snpu
{
namespace
{

struct MonitorFixture : ::testing::Test
{
    MonitorFixture() : soc(makeSystem(SystemKind::snpu)) {}

    SecureTask
    benignTask(std::vector<std::uint32_t> cores = {0})
    {
        SecureTask task;
        Instr nop;
        nop.op = Opcode::fence;
        task.program.code.push_back(nop);
        task.program.spad_rows_used = 32;
        task.expected_measurement =
            CodeVerifier::measure(task.program);
        task.topology = NocTopology{
            static_cast<std::uint32_t>(cores.size()), 1};
        task.proposed_cores = std::move(cores);
        return task;
    }

    Soc soc;
};

TEST_F(MonitorFixture, LaunchPipelineHappyPath)
{
    soc.monitor().submit(benignTask());
    LaunchResult launch = soc.monitor().launchNext();
    ASSERT_TRUE(launch.ok()) << launch.reason();
    ASSERT_EQ(launch.loadable.size(), 1u);
    // Privileged prologue + user code + privileged epilogue.
    EXPECT_EQ(launch.loadable[0].code.size(), 3u);
    EXPECT_EQ(launch.loadable[0].code.front().op, Opcode::sec_set_id);
    EXPECT_TRUE(launch.loadable[0].code.front().privileged);
    EXPECT_EQ(launch.loadable[0].code.back().op,
              Opcode::sec_reset_spad);
    // The core is now in the secure world.
    EXPECT_EQ(soc.npu().core(0).idState(), World::secure);

    EXPECT_TRUE(soc.monitor().finish(launch.task_id));
    EXPECT_EQ(soc.npu().core(0).idState(), World::normal);
}

TEST_F(MonitorFixture, UserCodeNeverKeepsPrivilege)
{
    SecureTask task = benignTask();
    // Sneak a privileged instruction into the user code.
    Instr evil;
    evil.op = Opcode::sec_set_id;
    evil.world = World::secure;
    evil.privileged = true;
    task.program.code.push_back(evil);
    task.expected_measurement = CodeVerifier::measure(task.program);

    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    ASSERT_TRUE(launch.ok()) << launch.reason();
    // The loader stripped the privilege bit from user instructions.
    EXPECT_FALSE(launch.loadable[0].code[2].privileged);
}

TEST_F(MonitorFixture, MeasurementMismatchRejected)
{
    SecureTask task = benignTask();
    task.expected_measurement[0] ^= 0xff;
    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    EXPECT_FALSE(launch.ok());
    EXPECT_NE(launch.reason().find("measurement"), std::string::npos);
    EXPECT_EQ(soc.monitor().rejectedLaunches(), 1u);
}

TEST_F(MonitorFixture, ModelDecryptionRoundTrip)
{
    SecureTask task = benignTask();
    std::vector<std::uint8_t> model(500);
    for (std::size_t i = 0; i < model.size(); ++i)
        model[i] = static_cast<std::uint8_t>(i ^ 0x5a);

    AesBlock iv{};
    iv[0] = 7;
    Digest mac{};
    task.encrypted_model =
        soc.monitor().verifier().encryptModel(model, iv, mac);
    task.model_mac = mac;
    task.model_iv = iv;

    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    ASSERT_TRUE(launch.ok()) << launch.reason();
    ASSERT_NE(launch.model_paddr, 0u);
    // The plaintext landed in secure memory.
    std::vector<std::uint8_t> out(model.size());
    soc.mem().data().read(launch.model_paddr, out.data(), out.size());
    EXPECT_EQ(out, model);
    EXPECT_EQ(soc.mem().map().worldOf(launch.model_paddr),
              World::secure);
}

TEST_F(MonitorFixture, TamperedModelRejected)
{
    SecureTask task = benignTask();
    std::vector<std::uint8_t> model(64, 0x42);
    AesBlock iv{};
    Digest mac{};
    task.encrypted_model =
        soc.monitor().verifier().encryptModel(model, iv, mac);
    task.encrypted_model[10] ^= 1; // bit-flip in transit
    task.model_mac = mac;
    task.model_iv = iv;

    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    EXPECT_FALSE(launch.ok());
    EXPECT_NE(launch.reason().find("authentication"),
              std::string::npos);
}

TEST_F(MonitorFixture, RouteIntegrityAcceptsSubMesh)
{
    // 2x2 block anchored at node 0 of the 5x2 mesh: {0,1,5,6}.
    SecureTask task = benignTask({0, 1, 5, 6});
    task.topology = NocTopology{2, 2};
    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    EXPECT_TRUE(launch.ok()) << launch.reason();
    soc.monitor().finish(launch.task_id);
}

TEST_F(MonitorFixture, RouteIntegrityRejectsStrip)
{
    SecureTask task = benignTask({0, 1, 2, 3});
    task.topology = NocTopology{2, 2};
    soc.monitor().submit(task);
    LaunchResult launch = soc.monitor().launchNext();
    EXPECT_FALSE(launch.ok());
    EXPECT_NE(launch.reason().find("route"), std::string::npos);
}

TEST_F(MonitorFixture, ScratchpadOverlapAcrossTasksRejected)
{
    SecureTask first = benignTask({0});
    soc.monitor().submit(first);
    LaunchResult l1 = soc.monitor().launchNext();
    ASSERT_TRUE(l1.ok()) << l1.reason();

    // A second secure task on the same core would overlap rows.
    SecureTask second = benignTask({0});
    soc.monitor().submit(second);
    LaunchResult l2 = soc.monitor().launchNext();
    EXPECT_FALSE(l2.ok());
    EXPECT_NE(l2.reason().find("overlap"), std::string::npos);

    // After the first finishes, the core frees up.
    ASSERT_TRUE(soc.monitor().finish(l1.task_id));
    SecureTask third = benignTask({0});
    soc.monitor().submit(third);
    LaunchResult l3 = soc.monitor().launchNext();
    EXPECT_TRUE(l3.ok()) << l3.reason();
}

TEST_F(MonitorFixture, TrampolineRejectsUnknownFunction)
{
    TrampolineCall call;
    call.fn = static_cast<MonitorFn>(999);
    TrampolineResult res = soc.monitor().trampoline().invoke(call);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, 1u);
}

TEST_F(MonitorFixture, TrampolineRejectsSecureSharedWindow)
{
    TrampolineCall call;
    call.fn = MonitorFn::query_status;
    call.shared = AddrRange{soc.mem().map().secureRegion().base, 64};
    TrampolineResult res = soc.monitor().trampoline().invoke(call);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, 2u);

    // A window straddling the boundary is just as bad.
    call.shared =
        AddrRange{soc.mem().map().secureRegion().base - 32, 64};
    EXPECT_EQ(soc.monitor().trampoline().invoke(call).error, 2u);
}

TEST_F(MonitorFixture, TrampolineQueryStatusWorks)
{
    const std::uint64_t id = soc.monitor().submit(benignTask());
    TrampolineCall call;
    call.fn = MonitorFn::query_status;
    call.args[0] = id;
    TrampolineResult res = soc.monitor().trampoline().invoke(call);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.value,
              static_cast<std::uint64_t>(SecureTaskState::submitted));
}

TEST(TrustedAllocatorTest, AllocFreeCoalesce)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x10000});
    const Addr a = alloc.alloc(0x100);
    const Addr b = alloc.alloc(0x100);
    const Addr c = alloc.alloc(0x100);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(c, 0u);
    EXPECT_TRUE(alloc.free(b));
    EXPECT_TRUE(alloc.free(a));
    // Coalesced: a 0x200 block fits where a+b were.
    const Addr d = alloc.alloc(0x200);
    EXPECT_EQ(d, a);
    EXPECT_FALSE(alloc.free(0xdead));
}

TEST(TrustedAllocatorTest, ExhaustionReturnsZero)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x1000});
    EXPECT_NE(alloc.alloc(0x800), 0u);
    EXPECT_NE(alloc.alloc(0x800), 0u);
    EXPECT_EQ(alloc.alloc(0x40), 0u);
}

TEST(TrustedAllocatorTest, SpadReservationOverlapDetected)
{
    TrustedAllocator alloc(AddrRange{0x1000, 0x1000});
    EXPECT_TRUE(alloc.reserveSpad(1, 0, 0, 100));
    EXPECT_FALSE(alloc.reserveSpad(2, 0, 50, 100));
    EXPECT_TRUE(alloc.reserveSpad(2, 0, 100, 100));
    EXPECT_TRUE(alloc.reserveSpad(2, 1, 0, 100)); // other core OK
    alloc.releaseSpad(1);
    EXPECT_TRUE(alloc.reserveSpad(3, 0, 0, 100));
    EXPECT_EQ(alloc.reservations(2).size(), 2u);
}

TEST(CodeVerifierTest, MeasurementIgnoresPrivilegeBit)
{
    NpuProgram prog;
    Instr instr;
    instr.op = Opcode::fence;
    prog.code.push_back(instr);
    const Digest d1 = CodeVerifier::measure(prog);
    prog.code[0].privileged = true;
    const Digest d2 = CodeVerifier::measure(prog);
    EXPECT_TRUE(digestEqual(d1, d2));
    // But any functional field changes it.
    prog.code[0].op = Opcode::mvin;
    EXPECT_FALSE(digestEqual(CodeVerifier::measure(prog), d1));
}

TEST(SecureLoaderTest, RouteCheckErrors)
{
    stats::Group stats("g");
    Mesh mesh(stats); // 5x2
    SecureLoader loader(mesh);

    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {0, 1, 5, 6}),
              RouteCheckError::ok);
    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {0, 1, 5}),
              RouteCheckError::wrong_count);
    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {0, 0, 5, 6}),
              RouteCheckError::duplicate_core);
    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {0, 1, 10, 11}),
              RouteCheckError::out_of_mesh);
    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {0, 1, 2, 3}),
              RouteCheckError::not_contiguous);
    // Anchored off-grid: a 2x2 block starting at column 4 leaves
    // the mesh.
    EXPECT_EQ(loader.checkRoute(NocTopology{2, 2}, {4, 5, 9, 10}),
              RouteCheckError::out_of_mesh);
    // 1x4 strip is fine when a 1x4 strip was requested.
    EXPECT_EQ(loader.checkRoute(NocTopology{4, 1}, {1, 2, 3, 4}),
              RouteCheckError::ok);
}

TEST(TaskQueueTest, FifoAndRetire)
{
    SecureTaskQueue queue(2);
    SecureTask a;
    SecureTask b;
    const std::uint64_t id_a = queue.submit(a);
    const std::uint64_t id_b = queue.submit(b);
    EXPECT_NE(id_a, 0u);
    EXPECT_NE(id_b, 0u);
    // Overflow.
    SecureTask c;
    EXPECT_EQ(queue.submit(c), 0u);

    ASSERT_NE(queue.front(), nullptr);
    EXPECT_EQ(queue.front()->id, id_a);
    queue.find(id_a)->state = SecureTaskState::completed;
    EXPECT_EQ(queue.front()->id, id_b);
    queue.retire();
    EXPECT_EQ(queue.size(), 1u);
}

} // namespace
} // namespace snpu
