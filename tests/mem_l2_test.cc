/**
 * @file
 * Unit tests for the banked L2 cache model.
 */

#include <gtest/gtest.h>

#include "mem/l2_cache.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct L2Fixture : ::testing::Test
{
    L2Fixture()
        : stats("g"), dram(stats), l2(stats, dram, smallParams())
    {
    }

    static L2Params
    smallParams()
    {
        L2Params p;
        p.size_bytes = 16 * 1024; // 16 KiB: 256 lines
        p.ways = 4;
        p.banks = 4;
        return p;
    }

    MemRequest
    read(Addr addr, std::uint32_t bytes = 64)
    {
        return MemRequest{addr, bytes, MemOp::read, World::normal};
    }

    stats::Group stats;
    DramModel dram;
    L2Cache l2;
};

TEST_F(L2Fixture, FirstAccessMissesSecondHits)
{
    MemResult r1 = l2.access(0, read(0x8000'0000));
    EXPECT_EQ(l2.misses(), 1u);
    EXPECT_FALSE(r1.l2_hit);

    MemResult r2 = l2.access(r1.done, read(0x8000'0000));
    EXPECT_EQ(l2.hits(), 1u);
    EXPECT_TRUE(r2.l2_hit);
    EXPECT_LT(r2.done - r1.done, r1.done); // hit is much faster
}

TEST_F(L2Fixture, HitLatencyMatchesParameter)
{
    MemResult miss = l2.access(0, read(0x8000'0000));
    MemResult hit = l2.access(miss.done, read(0x8000'0000));
    EXPECT_EQ(hit.done - miss.done, smallParams().hit_latency);
}

TEST_F(L2Fixture, MultiLineRequestTouchesEachLine)
{
    l2.access(0, read(0x8000'0000, 256)); // 4 lines
    EXPECT_EQ(l2.misses(), 4u);
}

TEST_F(L2Fixture, LruEvictsOldest)
{
    // 4 ways per set; the set repeats every 64 sets * 64 B = 4 KiB.
    const Addr base = 0x8000'0000;
    const Addr stride = 4096;
    // Fill all four ways of set 0.
    Tick t = 0;
    for (int w = 0; w < 4; ++w)
        t = l2.access(t, read(base + w * stride)).done;
    // Touch way 0 so way 1 becomes LRU.
    t = l2.access(t, read(base)).done;
    // Insert a fifth line: evicts way 1.
    t = l2.access(t, read(base + 4 * stride)).done;
    // Way 0 still hits; way 1 misses again.
    const std::uint64_t misses_before = l2.misses();
    t = l2.access(t, read(base)).done;
    EXPECT_EQ(l2.misses(), misses_before);
    l2.access(t, read(base + stride));
    EXPECT_EQ(l2.misses(), misses_before + 1);
}

TEST_F(L2Fixture, DirtyEvictionWritesBack)
{
    const Addr base = 0x8000'0000;
    const Addr stride = 4096;
    Tick t = 0;
    // Dirty one line.
    t = l2.access(t, MemRequest{base, 64, MemOp::write,
                                World::normal})
            .done;
    const std::uint64_t dram_writes_before =
        static_cast<std::uint64_t>(dram.totalBytes());
    // Evict it by filling the set.
    for (int w = 1; w <= 4; ++w)
        t = l2.access(t, read(base + w * stride)).done;
    EXPECT_GT(dram.totalBytes(), dram_writes_before);
}

TEST_F(L2Fixture, InvalidateAllForcesMisses)
{
    Tick t = l2.access(0, read(0x8000'0000)).done;
    l2.invalidateAll();
    l2.access(t, read(0x8000'0000));
    EXPECT_EQ(l2.misses(), 2u);
}

TEST_F(L2Fixture, BankConflictSerializes)
{
    // Two lines in the same bank (stride = banks * line = 256 B).
    Tick t = l2.access(0, read(0x8000'0000)).done;
    t = l2.access(t, read(0x8000'0000 + 256)).done;
    // Both warm: same-tick hits to the same bank serialize by the
    // bank cycle time; a hit in a different bank does not.
    const Tick a = l2.access(10000, read(0x8000'0000)).done;
    const Tick b = l2.access(10000, read(0x8000'0000 + 256)).done;
    EXPECT_EQ(b - a, smallParams().bank_cycle);

    Tick warm = l2.access(20000, read(0x8000'0000 + 64)).done;
    (void)warm;
    const Tick c = l2.access(30000, read(0x8000'0000)).done;
    const Tick d = l2.access(30000, read(0x8000'0000 + 64)).done;
    EXPECT_EQ(c, d);
}

TEST_F(L2Fixture, ZeroByteAccessPanics)
{
    EXPECT_THROW(l2.access(0, read(0x8000'0000, 0)), PanicError);
}

TEST(L2Geometry, BadGeometryIsFatal)
{
    stats::Group stats("g");
    DramModel dram(stats);
    L2Params p;
    p.size_bytes = 100; // not line-divisible into ways
    p.ways = 3;
    EXPECT_THROW(L2Cache(stats, dram, p), FatalError);
}

} // namespace
} // namespace snpu
