/**
 * @file
 * Robustness and failure-injection tests: random instruction streams
 * must never crash the core or breach isolation; random bit flips in
 * authenticated blobs must always be rejected; batched and serial
 * DMA must move identical bytes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/soc.hh"
#include "dma/dma_engine.hh"
#include "mem/mem_system.hh"
#include "npu/npu_core.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "tee/monitor/code_verifier.hh"

namespace snpu
{
namespace
{

/** Random (but structurally bounded) instruction generator. */
Instr
randomInstr(Rng &rng, Addr arena_base, Addr arena_size)
{
    static const Opcode ops[] = {
        Opcode::config,     Opcode::mvin,        Opcode::mvin_weight,
        Opcode::mvout,      Opcode::preload,     Opcode::compute,
        Opcode::fence,      Opcode::sec_set_id,  Opcode::sec_reset_spad,
    };
    Instr in;
    in.op = ops[rng.below(std::size(ops))];
    in.vaddr = arena_base + rng.below(arena_size / 2);
    in.spad_row = static_cast<std::uint32_t>(rng.below(20000));
    in.spad_row2 = static_cast<std::uint32_t>(rng.below(2000));
    in.rows = static_cast<std::uint32_t>(rng.below(64));
    in.k = static_cast<std::uint32_t>(rng.below(20));
    in.accumulate = rng.chance(0.5);
    in.privileged = rng.chance(0.1);
    in.world = rng.chance(0.5) ? World::secure : World::normal;
    in.act = rng.chance(0.5) ? Activation::relu : Activation::none;
    return in;
}

class ProgramFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProgramFuzz, RandomProgramsNeverCrashOrEscalate)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl pass;
    NpuCoreParams p;
    p.spad_rows = 1024;
    p.acc_rows = 256;
    p.timing_only = false;
    NpuCore core(stats, mem, pass, p);

    Rng rng(GetParam());
    const AddrRange &arena = mem.map().npuArena(World::normal);

    for (int trial = 0; trial < 40; ++trial) {
        NpuProgram prog;
        const auto len = 1 + rng.below(30);
        for (std::uint64_t i = 0; i < len; ++i) {
            Instr in = randomInstr(rng, arena.base, arena.size);
            // k beyond the array dimension is a compiler bug, not
            // hostile input: the engine panics on it by contract.
            if (in.op == Opcode::compute && in.k > 16)
                in.k = 16;
            prog.code.push_back(in);
        }
        prog.spad_rows_used = 64;

        ExecOptions opts;
        opts.flush_save_area = arena.base + (8u << 20);
        // Must not throw; may fail cleanly with an error string.
        ExecResult res = core.run(0, prog, opts);
        if (!res.ok()) {
            EXPECT_FALSE(res.error().empty());
        }
        // A program that contained only unprivileged instructions
        // must not have moved the core into the secure world.
        bool had_privileged_set = false;
        for (const Instr &in : prog.code) {
            if (in.op == Opcode::sec_set_id && in.privileged &&
                in.world == World::secure) {
                had_privileged_set = true;
            }
        }
        if (!had_privileged_set) {
            EXPECT_EQ(core.idState(), World::normal);
        }
        // Reset for the next trial.
        core.setIdState(World::normal, true);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1001));

class ModelTamperFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModelTamperFuzz, AnySingleBitFlipIsRejected)
{
    AesKey key{};
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 1);
    CodeVerifier verifier(key);

    Rng rng(GetParam());
    std::vector<std::uint8_t> model(256);
    for (auto &b : model)
        b = static_cast<std::uint8_t>(rng.next());
    AesBlock iv{};
    iv[3] = 9;
    Digest mac{};
    const auto ciphertext = verifier.encryptModel(model, iv, mac);

    for (int trial = 0; trial < 64; ++trial) {
        auto tampered = ciphertext;
        const auto byte = rng.below(tampered.size());
        const auto bit = rng.below(8);
        tampered[byte] ^= static_cast<std::uint8_t>(1u << bit);
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(verifier.decryptModel(tampered, mac, iv, out))
            << "bit flip at byte " << byte << " bit " << bit
            << " was accepted";
    }

    // MAC tampering is equally fatal.
    for (int trial = 0; trial < 16; ++trial) {
        Digest bad_mac = mac;
        bad_mac[rng.below(bad_mac.size())] ^= 0x01;
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(
            verifier.decryptModel(ciphertext, bad_mac, iv, out));
    }

    // The untampered blob still decrypts.
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(verifier.decryptModel(ciphertext, mac, iv, out));
    EXPECT_EQ(out, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelTamperFuzz,
                         ::testing::Values(11, 22, 33));

class DmaEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DmaEquivalence, BatchedAndSerialTransfersMoveSameBytes)
{
    Rng rng(GetParam());
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl pass;
    DmaEngine engine(stats, mem, pass);
    const Addr base = mem.map().dram().base + (8u << 20);

    // Scatter random data.
    std::vector<std::uint8_t> blob(64 * 1024);
    for (auto &b : blob)
        b = static_cast<std::uint8_t>(rng.next());
    mem.data().write(base, blob.data(), blob.size());

    for (int trial = 0; trial < 20; ++trial) {
        std::vector<DmaRequest> reqs;
        const auto n = 1 + rng.below(12);
        for (std::uint64_t i = 0; i < n; ++i) {
            DmaRequest req;
            req.vaddr = base + rng.below(blob.size() - 4096);
            req.bytes = static_cast<std::uint32_t>(1 + rng.below(2048));
            req.op = MemOp::read;
            req.world = World::normal;
            reqs.push_back(req);
        }

        // Serial path.
        std::vector<std::vector<std::uint8_t>> serial(reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            DmaResult res = engine.transfer(0, reqs[i], &serial[i]);
            ASSERT_TRUE(res.ok);
        }

        // Batched path.
        std::vector<std::vector<std::uint8_t>> batched(reqs.size());
        std::vector<std::vector<std::uint8_t> *> ptrs;
        for (auto &buffer : batched)
            ptrs.push_back(&buffer);
        DmaResult res = engine.transferBatch(0, reqs, ptrs);
        ASSERT_TRUE(res.ok);

        for (std::size_t i = 0; i < reqs.size(); ++i)
            EXPECT_EQ(serial[i], batched[i]) << "stream " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaEquivalence,
                         ::testing::Values(5, 50, 500));

TEST(MonitorFuzz, GarbageTrampolineCallsNeverCrash)
{
    Soc soc(makeSystem(SystemKind::snpu));
    Rng rng(99);
    for (int trial = 0; trial < 500; ++trial) {
        TrampolineCall call;
        call.fn = static_cast<MonitorFn>(rng.below(10));
        for (auto &arg : call.args)
            arg = rng.next();
        if (rng.chance(0.5)) {
            call.shared.base = rng.next() & 0xffff'ffffULL;
            call.shared.size = rng.below(1u << 20);
        }
        // Must not throw; result is either ok or a coded error.
        TrampolineResult res = soc.monitor().trampoline().invoke(call);
        if (!res.ok) {
            EXPECT_NE(res.error, 0u);
        }
    }
}

} // namespace
} // namespace snpu
