/**
 * @file
 * Unit tests for the world-partitioned address map.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "sim/logging.hh"

namespace snpu
{
namespace
{

TEST(AddrRange, ContainsAndOverlaps)
{
    AddrRange r{100, 50};
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(149));
    EXPECT_FALSE(r.contains(150));
    EXPECT_TRUE(r.contains(100, 50));
    EXPECT_FALSE(r.contains(100, 51));
    EXPECT_FALSE(r.contains(99, 2));

    EXPECT_TRUE(r.overlaps(AddrRange{140, 20}));
    EXPECT_FALSE(r.overlaps(AddrRange{150, 10}));
    EXPECT_TRUE(r.overlaps(AddrRange{0, 101}));
    EXPECT_FALSE(r.overlaps(AddrRange{0, 100}));
}

TEST(AddrRange, ContainsHandlesOverflowAttempts)
{
    AddrRange r{0xffff'ffff'ffff'f000ULL, 0x1000};
    EXPECT_TRUE(r.contains(0xffff'ffff'ffff'f000ULL, 0x1000));
    EXPECT_FALSE(r.contains(0xffff'ffff'ffff'f800ULL, 0x1000));
}

TEST(AddressMap, DefaultLayoutIsConsistent)
{
    AddressMap map;
    EXPECT_TRUE(map.dram().contains(map.secureRegion().base,
                                    map.secureRegion().size));
    EXPECT_TRUE(map.secureRegion().contains(
        map.npuArena(World::secure).base,
        map.npuArena(World::secure).size));
    EXPECT_FALSE(map.npuArena(World::normal)
                     .overlaps(map.secureRegion()));
}

TEST(AddressMap, WorldOf)
{
    AddressMap map;
    EXPECT_EQ(map.worldOf(map.dram().base), World::normal);
    EXPECT_EQ(map.worldOf(map.secureRegion().base), World::secure);
    EXPECT_EQ(map.worldOf(map.secureRegion().end() - 1),
              World::secure);
}

TEST(AddressMap, NormalCannotTouchSecure)
{
    AddressMap map;
    const Addr secure = map.secureRegion().base;
    EXPECT_FALSE(map.accessAllowed(World::normal, secure, 64));
    // A range straddling the boundary is also denied.
    EXPECT_FALSE(map.accessAllowed(World::normal, secure - 32, 64));
    EXPECT_TRUE(map.accessAllowed(World::normal, secure - 64, 64));
}

TEST(AddressMap, SecureCanTouchBothWorlds)
{
    AddressMap map;
    EXPECT_TRUE(map.accessAllowed(World::secure,
                                  map.secureRegion().base, 64));
    EXPECT_TRUE(
        map.accessAllowed(World::secure, map.dram().base, 64));
}

TEST(AddressMap, OutsideDramDenied)
{
    AddressMap map;
    EXPECT_FALSE(map.accessAllowed(World::secure, 0x1000, 64));
    EXPECT_FALSE(map.accessAllowed(World::normal,
                                   map.dram().end(), 64));
}

TEST(AddressMap, BadLayoutsAreFatal)
{
    const AddrRange dram{0x8000'0000, 1u << 30};
    const AddrRange secure{0x8000'0000 + (1u << 29), 1u << 28};
    const AddrRange npu_n{0x8000'0000, 1u << 20};
    const AddrRange npu_s{secure.base, 1u << 20};
    // Secure region outside DRAM.
    EXPECT_THROW(AddressMap(dram, AddrRange{0x4000'0000, 64}, npu_n,
                            npu_s),
                 FatalError);
    // Secure NPU arena outside the secure region.
    EXPECT_THROW(AddressMap(dram, secure, npu_n,
                            AddrRange{dram.base, 1u << 20}),
                 FatalError);
    // Normal arena overlapping the secure region.
    EXPECT_THROW(AddressMap(dram, secure,
                            AddrRange{secure.base, 1u << 20}, npu_s),
                 FatalError);
}

} // namespace
} // namespace snpu
