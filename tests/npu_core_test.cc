/**
 * @file
 * Unit and integration tests for the NPU core execution engine:
 * functional GEMM correctness against a reference, security
 * instruction enforcement, and timing behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/mem_system.hh"
#include "npu/npu_core.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace snpu
{
namespace
{

struct CoreFixture : ::testing::Test
{
    CoreFixture()
        : stats("g"), mem(stats)
    {
        NpuCoreParams p;
        p.spad_rows = 1024;
        p.acc_rows = 256;
        p.timing_only = false;
        core = std::make_unique<NpuCore>(stats, mem, pass, p);
        base = mem.map().npuArena(World::normal).base;
    }

    stats::Group stats;
    MemSystem mem;
    PassThroughControl pass;
    std::unique_ptr<NpuCore> core;
    Addr base = 0;
};

TEST_F(CoreFixture, MvinLoadsScratchpadRows)
{
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i + 1);
    mem.data().write(base, data.data(), data.size());

    NpuProgram prog;
    Instr mvin;
    mvin.op = Opcode::mvin;
    mvin.vaddr = base;
    mvin.spad_row = 10;
    mvin.rows = 4;
    prog.code.push_back(mvin);

    ExecResult res = core->run(0, prog, ExecOptions{});
    ASSERT_TRUE(res.ok()) << res.error();
    std::uint8_t row[16];
    ASSERT_EQ(core->scratchpad().read(World::normal, 10, row),
              SpadStatus::ok);
    EXPECT_EQ(row[0], 1);
    ASSERT_EQ(core->scratchpad().read(World::normal, 13, row),
              SpadStatus::ok);
    EXPECT_EQ(row[0], 49);
}

TEST_F(CoreFixture, SmallGemmMatchesReference)
{
    // C[8x16] = A[8x16] * W[16x16] with ReLU + >>8 requantization.
    Rng rng(7);
    std::vector<std::int8_t> a(8 * 16), w(16 * 16);
    for (auto &v : a)
        v = static_cast<std::int8_t>(rng.range(-100, 100));
    for (auto &v : w)
        v = static_cast<std::int8_t>(rng.range(-100, 100));

    const Addr a_va = base;
    const Addr w_va = base + 0x1000;
    const Addr c_va = base + 0x2000;
    mem.data().write(a_va, a.data(), a.size());
    mem.data().write(w_va, w.data(), w.size());

    NpuProgram prog;
    Instr cfg;
    cfg.op = Opcode::config;
    cfg.act = Activation::relu;
    prog.code.push_back(cfg);

    Instr lda;
    lda.op = Opcode::mvin;
    lda.vaddr = a_va;
    lda.spad_row = 0;
    lda.rows = 8;
    prog.code.push_back(lda);

    Instr ldw;
    ldw.op = Opcode::mvin_weight;
    ldw.vaddr = w_va;
    ldw.spad_row = 100;
    ldw.rows = 16;
    prog.code.push_back(ldw);

    Instr preload;
    preload.op = Opcode::preload;
    preload.spad_row = 100;
    prog.code.push_back(preload);

    Instr compute;
    compute.op = Opcode::compute;
    compute.spad_row = 0;
    compute.spad_row2 = 0;
    compute.rows = 8;
    compute.k = 16;
    compute.accumulate = false;
    prog.code.push_back(compute);

    Instr st;
    st.op = Opcode::mvout;
    st.vaddr = c_va;
    st.spad_row = 0;
    st.rows = 8;
    prog.code.push_back(st);

    ExecResult res = core->run(0, prog, ExecOptions{});
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(res.macs, 8u * 16 * 16);

    // Reference computation.
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 16; ++c) {
            std::int32_t sum = 0;
            for (int k = 0; k < 16; ++k)
                sum += static_cast<std::int32_t>(a[r * 16 + k]) *
                       w[k * 16 + c];
            if (sum < 0)
                sum = 0; // relu
            sum >>= 8;
            sum = std::clamp(sum, -128, 127);
            const auto got = static_cast<std::int8_t>(
                mem.data().read8(c_va + r * 16 + c));
            EXPECT_EQ(got, static_cast<std::int8_t>(sum))
                << "r=" << r << " c=" << c;
        }
    }
}

TEST_F(CoreFixture, AccumulationAcrossKTiles)
{
    // Two K-tiles of all-ones accumulate into the same rows.
    std::vector<std::int8_t> ones(16 * 16, 1);
    mem.data().write(base, ones.data(), ones.size());
    mem.data().write(base + 0x1000, ones.data(), ones.size());

    NpuProgram prog;
    for (int kt = 0; kt < 2; ++kt) {
        Instr lda;
        lda.op = Opcode::mvin;
        lda.vaddr = base;
        lda.spad_row = static_cast<std::uint32_t>(kt * 16);
        lda.rows = 16;
        prog.code.push_back(lda);

        Instr ldw;
        ldw.op = Opcode::mvin_weight;
        ldw.vaddr = base + 0x1000;
        ldw.spad_row = static_cast<std::uint32_t>(200 + kt * 16);
        ldw.rows = 16;
        prog.code.push_back(ldw);

        Instr preload;
        preload.op = Opcode::preload;
        preload.spad_row = static_cast<std::uint32_t>(200 + kt * 16);
        prog.code.push_back(preload);

        Instr compute;
        compute.op = Opcode::compute;
        compute.spad_row = static_cast<std::uint32_t>(kt * 16);
        compute.spad_row2 = 0;
        compute.rows = 16;
        compute.k = 16;
        compute.accumulate = kt > 0;
        prog.code.push_back(compute);
    }
    Instr st;
    st.op = Opcode::mvout;
    st.vaddr = base + 0x4000;
    st.spad_row = 0;
    st.rows = 16;
    prog.code.push_back(st);

    ExecResult res = core->run(0, prog, ExecOptions{});
    ASSERT_TRUE(res.ok()) << res.error();
    // Each output: 2 * (1*1 * 16) = 32; >>8 = 0. Check accumulator
    // directly instead.
    std::uint8_t acc_row[64];
    ASSERT_EQ(core->accumulator().read(World::normal, 0, acc_row),
              SpadStatus::ok);
    const auto *acc32 = reinterpret_cast<std::int32_t *>(acc_row);
    EXPECT_EQ(acc32[0], 32);
}

TEST_F(CoreFixture, UnprivilegedSecSetIdFails)
{
    NpuProgram prog;
    Instr instr;
    instr.op = Opcode::sec_set_id;
    instr.world = World::secure;
    instr.privileged = false;
    prog.code.push_back(instr);

    ExecResult res = core->run(0, prog, ExecOptions{});
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(core->idState(), World::normal);
    EXPECT_GT(res.violations, 0u);
}

TEST_F(CoreFixture, PrivilegedSecSetIdSucceeds)
{
    NpuProgram prog;
    Instr instr;
    instr.op = Opcode::sec_set_id;
    instr.world = World::secure;
    instr.privileged = true;
    prog.code.push_back(instr);

    ExecResult res = core->run(0, prog, ExecOptions{});
    EXPECT_TRUE(res.ok()) << res.error();
    EXPECT_EQ(core->idState(), World::secure);
}

TEST_F(CoreFixture, SecResetSpadRequiresPrivilege)
{
    NpuProgram prog;
    Instr instr;
    instr.op = Opcode::sec_reset_spad;
    instr.spad_row = 0;
    instr.rows = 8;
    instr.privileged = false;
    prog.code.push_back(instr);
    ExecResult res = core->run(0, prog, ExecOptions{});
    EXPECT_FALSE(res.ok());
}

TEST_F(CoreFixture, DmaDenialAbortsProgram)
{
    NpuProgram prog;
    Instr mvin;
    mvin.op = Opcode::mvin;
    // Secure region, normal core: the memory partition denies it.
    mvin.vaddr = mem.map().secureRegion().base;
    mvin.spad_row = 0;
    mvin.rows = 1;
    prog.code.push_back(mvin);
    ExecResult res = core->run(0, prog, ExecOptions{});
    EXPECT_FALSE(res.ok());
    EXPECT_GT(res.violations, 0u);
}

TEST_F(CoreFixture, ComputeOverlapsWithNextLoad)
{
    // Load + compute + load + compute: the second load should start
    // while the first compute runs, so the total is less than the
    // serial sum.
    auto make_prog = [&](bool fenced) {
        NpuProgram prog;
        for (int i = 0; i < 8; ++i) {
            Instr lda;
            lda.op = Opcode::mvin;
            lda.vaddr = base + static_cast<Addr>(i) * 0x10000;
            lda.spad_row = static_cast<std::uint32_t>((i % 2) * 256);
            lda.rows = 256;
            prog.code.push_back(lda);
            if (fenced) {
                Instr fence;
                fence.op = Opcode::fence;
                prog.code.push_back(fence);
            }
            Instr compute;
            compute.op = Opcode::compute;
            compute.spad_row = static_cast<std::uint32_t>((i % 2) * 256);
            compute.spad_row2 = 0;
            compute.rows = 250;
            compute.k = 16;
            prog.code.push_back(compute);
            if (fenced) {
                Instr fence;
                fence.op = Opcode::fence;
                prog.code.push_back(fence);
            }
        }
        return prog;
    };

    ExecResult overlapped = core->run(0, make_prog(false),
                                      ExecOptions{});
    ASSERT_TRUE(overlapped.ok());

    stats::Group stats2("g2");
    MemSystem mem2(stats2);
    PassThroughControl pass2;
    NpuCoreParams p;
    p.spad_rows = 1024;
    p.acc_rows = 256;
    p.timing_only = true;
    NpuCore core2(stats2, mem2, pass2, p);
    ExecResult fenced = core2.run(0, make_prog(true), ExecOptions{});
    ASSERT_TRUE(fenced.ok());

    EXPECT_LT(overlapped.cycles(), fenced.cycles());
}

TEST_F(CoreFixture, FlushInstructionAddsTraffic)
{
    NpuProgram prog;
    prog.spad_rows_used = 64;
    Instr flush;
    flush.op = Opcode::flush_spad;
    prog.code.push_back(flush);

    ExecOptions opts;
    opts.flush_save_area = base + 0x100000;
    ExecResult res = core->run(0, prog, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_GT(res.flush_cycles, 0u);
}

TEST_F(CoreFixture, TimingOnlyModeSkipsData)
{
    stats::Group stats2("g2");
    MemSystem mem2(stats2);
    PassThroughControl pass2;
    NpuCoreParams p;
    p.timing_only = true;
    p.spad_rows = 1024;
    p.acc_rows = 256;
    NpuCore core2(stats2, mem2, pass2, p);

    NpuProgram prog;
    Instr mvin;
    mvin.op = Opcode::mvin;
    mvin.vaddr = mem2.map().npuArena(World::normal).base;
    mvin.spad_row = 0;
    mvin.rows = 4;
    prog.code.push_back(mvin);
    ExecResult res = core2.run(0, prog, ExecOptions{});
    EXPECT_TRUE(res.ok());
    EXPECT_GT(res.cycles(), 0u);
}

TEST(CoreGeometry, BadGeometryIsFatal)
{
    stats::Group stats("g");
    MemSystem mem(stats);
    PassThroughControl pass;
    NpuCoreParams p;
    p.spad_row_bytes = 8; // narrower than dim=16
    EXPECT_THROW(NpuCore(stats, mem, pass, p), FatalError);
}

} // namespace
} // namespace snpu
