/**
 * @file
 * snpu_serve — command-line driver for the multi-tenant serving
 * engine. Spins up N tenants with open-loop Poisson arrivals at a
 * chosen offered load and serves them across M tiles under one of
 * the Table I isolation policies, reporting per-tenant tail latency
 * and throughput. Fully deterministic for a fixed seed.
 *
 * Usage:
 *   snpu_serve [key=value ...]
 *
 * Keys (defaults in parentheses):
 *   tenants=<n>                       (4)
 *   models=<name,name,...>  tenant t runs models[t % k]
 *                                     (the whole zoo, in order)
 *   cores=<n>                         (2)
 *   load=<fraction of ideal capacity> (0.7)
 *   isolation=fine|coarse|partition|id (id)
 *   protection=<backend name>         (guarder)
 *     any registered backend. Non-guarder backends serve without
 *     the NPU Monitor, so secure= then defaults to 0.
 *   requests=<per tenant>             (16)
 *   secure=<first k tenants secure>   (tenants/2)
 *   capacity=<admission queue depth>  (8)
 *   scale=<divisor for M dims>        (16)
 *   seed=<rng seed>                   (1)
 *   attest=0|1  secure tenants must pass a measured-boot
 *         attestation handshake at admission (guarder only) (0)
 *   corrupt_boot=<stage>  tamper a boot stage before bring-up:
 *         rom-loader | trusted-firmware | teeos+npu-monitor (off)
 *   corrupt_byte=<n>  image byte the tamper flips (0)
 *   coarse_interval=<segments>        (5)
 *   stats=0|1  dump the full stat group (0)
 *   stats_json=<file>  JSON stat dump   (off)
 *   trace_file=<file>  record serve-path spans and scheduling
 *         decisions (serve+sched+monitor categories) (off)
 *   spans=0|1  per-tenant span summary  (0)
 *
 * Examples:
 *   snpu_serve tenants=4 cores=4 load=0.7 isolation=id
 *   snpu_serve tenants=2 cores=1 load=0.3 isolation=partition
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/systems.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/trace.hh"
#include "workload/model_zoo.hh"

using namespace snpu;

namespace
{

SchedPolicy
policyByName(const std::string &name)
{
    if (name == "fine" || name == "flush_fine")
        return SchedPolicy::flush_fine;
    if (name == "coarse" || name == "flush_coarse")
        return SchedPolicy::flush_coarse;
    if (name == "partition" || name == "part")
        return SchedPolicy::partition;
    if (name == "id" || name == "id_based")
        return SchedPolicy::id_based;
    fatal("unknown isolation policy '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        try {
            cfg.parseArg(argv[i]);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\nsee the header comment for "
                                 "usage\n",
                         e.what());
            return 2;
        }
    }

    const auto ntenants =
        static_cast<std::uint32_t>(cfg.getInt("tenants", 4));
    const auto ncores =
        static_cast<std::uint32_t>(cfg.getInt("cores", 2));
    const double load = cfg.getDouble("load", 0.7);
    const std::string isolation = cfg.getString("isolation", "id");
    const auto requests =
        static_cast<std::uint32_t>(cfg.getInt("requests", 16));

    // Protection backend selection. Secure tenants need the NPU
    // Monitor, which only the guarder system carries, so non-guarder
    // runs default secure=0. The access_control= alias completed its
    // deprecation cycle (DESIGN.md §3f): reject it with the
    // migration hint instead of silently ignoring it.
    if (!cfg.getString("access_control", "").empty()) {
        std::fprintf(stderr, "snpu_serve: access_control= was "
                             "removed; use protection=\n");
        return 2;
    }
    std::string protection = cfg.getString("protection", "guarder");
    ProtectionRegistry &reg = ProtectionRegistry::global();
    if (!reg.known(protection)) {
        std::fprintf(stderr,
                     "unknown protection backend '%s' "
                     "(registered: %s)\n",
                     protection.c_str(), reg.namesJoined().c_str());
        return 2;
    }
    const bool guarded = protection == "guarder";
    const auto secure = static_cast<std::uint32_t>(
        cfg.getInt("secure", guarded ? ntenants / 2 : 0));
    if (!guarded && secure > 0) {
        std::fprintf(stderr, "secure tenants need the NPU Monitor "
                             "(protection=guarder)\n");
        return 2;
    }
    const auto capacity =
        static_cast<std::uint32_t>(cfg.getInt("capacity", 8));
    const auto scale =
        static_cast<std::uint32_t>(cfg.getInt("scale", 16));
    const auto seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    const bool attest = cfg.getBool("attest", false);
    if (attest && !guarded) {
        std::fprintf(stderr, "attestation quotes come from the NPU "
                             "Monitor (protection=guarder)\n");
        return 2;
    }

    ServerConfig server_cfg;
    server_cfg.policy = policyByName(isolation);
    server_cfg.num_cores = ncores;
    server_cfg.coarse_interval = static_cast<std::uint32_t>(
        cfg.getInt("coarse_interval", 5));
    server_cfg.attestation = attest;

    // The guarder serves on the full sNPU system (with the monitor);
    // other backends serve on the system they belong to.
    SocParams soc_params =
        guarded ? makeSystem(SystemKind::snpu)
                : makeSystem(protection == "iommu"
                                 ? SystemKind::trustzone_npu
                                 : SystemKind::normal_npu);
    soc_params.protection = protection;
    soc_params.boot_corrupt_stage = cfg.getString("corrupt_boot", "");
    soc_params.boot_corrupt_byte = static_cast<std::uint32_t>(
        cfg.getInt("corrupt_byte", 0));
    Soc soc(soc_params);
    if (soc.hasMonitor() && !soc.bootReport().ok) {
        std::printf("measured boot HALTED at stage '%s' — the "
                    "measurement register diverged\n",
                    soc.bootReport().failed_stage.c_str());
    }

    // Tenants cycle through the model zoo; the first `secure` of
    // them run confidential models through the NPU Monitor. The
    // offered load is calibrated against the mean ideal service
    // time across the tenant mix.
    std::vector<ModelId> zoo;
    std::string names = cfg.getString("models", "");
    while (!names.empty()) {
        const std::size_t comma = names.find(',');
        zoo.push_back(modelByName(names.substr(0, comma)));
        names = comma == std::string::npos
                    ? std::string()
                    : names.substr(comma + 1);
    }
    if (zoo.empty())
        zoo = allModels();
    std::vector<TenantSpec> tenants(ntenants);
    std::vector<double> service(ntenants);
    double max_service = 0.0;
    for (std::uint32_t t = 0; t < ntenants; ++t) {
        TenantSpec &spec = tenants[t];
        const ModelId model = zoo[t % zoo.size()];
        const World world =
            t < secure ? World::secure : World::normal;
        spec.name = std::string(modelName(model)) + "_" +
                    std::to_string(t);
        spec.task = NpuTask::fromModel(model, world);
        spec.task.model = spec.task.model.scaled(scale);
        spec.queue_capacity = capacity;
        service[t] = SnpuServer::profiledServiceCycles(soc.params(),
                                                       spec.task);
        max_service = std::max(max_service, service[t]);
    }
    // Size the latency histogram to the slowest tenant's service
    // time so the tail percentiles resolve at sane loads and
    // saturate readably past the knee.
    server_cfg.latency_hist_max = 32.0 * max_service;

    // Each tenant offers an equal 1/N share of the target load
    // against its own measured service time, so a heterogeneous mix
    // (alexnet is ~20x mobilenet at the same scale) loads every
    // tenant proportionally instead of drowning the slow models.
    for (std::uint32_t t = 0; t < ntenants; ++t) {
        const double gap =
            meanGapForLoad(load, ntenants, ncores, service[t]);
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + t);
        tenants[t].arrivals = poissonArrivals(rng, gap, requests);
    }

    std::printf("serving %u tenants (%u secure) on %u tiles, "
                "policy=%s, offered load=%.2f, %u req/tenant, "
                "seed=%llu\n",
                ntenants, secure, ncores,
                schedPolicyName(server_cfg.policy), load, requests,
                static_cast<unsigned long long>(seed));

    // Optional serve-path trace: request spans, scheduling
    // decisions and monitor activity.
    std::unique_ptr<FileTraceSink> trace_sink;
    const std::string trace_file = cfg.getString("trace_file", "");
    if (!trace_file.empty()) {
        const std::uint32_t mask = traceMask(TraceCategory::serve) |
                                   traceMask(TraceCategory::sched) |
                                   traceMask(TraceCategory::monitor);
        trace_sink =
            std::make_unique<FileTraceSink>(trace_file, mask);
        soc.attachTrace(trace_sink.get());
    }

    SnpuServer server(soc, server_cfg);
    ServeResult res = server.serve(tenants);
    if (!res.ok()) {
        std::fprintf(stderr, "serving failed: %s\n",
                     res.error().c_str());
        return 1;
    }

    std::printf("%-14s %5s %4s %9s %9s %9s %9s %9s %8s %5s\n",
                "tenant", "done", "rej", "thru/Mcy", "p50", "p95",
                "p99", "worst", "monitor", "depth");
    for (const TenantReport &rep : res.tenants) {
        std::printf("%-14s %5u %4u %9.3f %9llu %9llu %9llu %9llu "
                    "%8llu %5u\n",
                    rep.name.c_str(), rep.completed, rep.rejected,
                    rep.throughput,
                    static_cast<unsigned long long>(rep.p50),
                    static_cast<unsigned long long>(rep.p95),
                    static_cast<unsigned long long>(rep.p99),
                    static_cast<unsigned long long>(
                        rep.worst_latency),
                    static_cast<unsigned long long>(
                        rep.monitor_cycles),
                    rep.peak_queue_depth);
    }
    std::printf("makespan %llu cycles, utilization %.1f%%, flush "
                "overhead %llu, monitor overhead %llu\n",
                static_cast<unsigned long long>(res.makespan),
                res.utilization * 100.0,
                static_cast<unsigned long long>(res.flush_overhead),
                static_cast<unsigned long long>(
                    res.monitor_overhead));

    if (attest) {
        std::printf("\n%-14s %8s %7s %7s %10s\n", "tenant",
                    "attested", "hshake", "denied", "cycles");
        for (const TenantReport &rep : res.tenants) {
            std::printf("%-14s %8s %7u %7u %10llu\n",
                        rep.name.c_str(),
                        rep.attested ? "yes" : "no",
                        rep.attest_handshakes, rep.attest_denied,
                        static_cast<unsigned long long>(
                            rep.attest_cycles));
        }
        std::printf("attestation overhead %llu cycles total\n",
                    static_cast<unsigned long long>(
                        res.attest_overhead));
    }

    if (cfg.getBool("spans", false)) {
        std::printf("\n%-14s %6s %12s %12s %9s %8s\n", "tenant",
                    "spans", "mean queue", "mean exec", "overflow",
                    "clipped");
        for (const TenantReport &rep : res.tenants) {
            std::printf("%-14s %6u %12.1f %12.1f %9llu %8s\n",
                        rep.name.c_str(), rep.spans,
                        rep.mean_queue_cycles, rep.mean_exec_cycles,
                        static_cast<unsigned long long>(
                            rep.latency_overflow),
                        rep.p99_clipped ? "yes" : "no");
        }
    }

    if (cfg.getBool("stats", false)) {
        std::ostringstream os;
        soc.stats().dump(os);
        std::fputs(os.str().c_str(), stdout);
    }
    const std::string stats_json = cfg.getString("stats_json", "");
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json.c_str());
            return 1;
        }
        soc.registry().dumpJson(os);
        std::printf("stats: %s\n", stats_json.c_str());
    }
    if (trace_sink) {
        std::printf("trace: %llu records -> %s\n",
                    static_cast<unsigned long long>(
                        trace_sink->lines()),
                    trace_file.c_str());
    }
    return 0;
}
