/**
 * @file
 * Quickstart: the complete sNPU secure-inference flow in one file.
 *
 *   1. Build the sNPU SoC (Table II configuration).
 *   2. Provision a confidential model: encrypt + MAC it with the key
 *      sealed to the NPU Monitor, and record the program measurement
 *      the user expects.
 *   3. Submit the task through the untrusted driver path and let the
 *      monitor verify, decrypt, and set up the secure context.
 *   4. Run the loadable program on the assigned core and read the
 *      security counters.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/soc.hh"
#include "core/task_runner.hh"
#include "tee/monitor/npu_monitor.hh"

using namespace snpu;

int
main()
{
    // 1. The SoC. makeSystem() returns the paper's sNPU config:
    //    NPU Guarder access control, ID-based scratchpad isolation,
    //    peephole NoC, and the NPU Monitor in the secure world.
    Soc soc(makeSystem(SystemKind::snpu));
    std::printf("built: %s\n", soc.params().describe().c_str());

    // 2. A small confidential model (weights are secret bytes) and
    //    a compiled program for it. In a real deployment the model
    //    owner performs this step; the monitor's verifier doubles as
    //    the provisioning tool here because it holds the sealed key.
    TaskRunner runner(soc);
    NpuTask task = NpuTask::fromModel(ModelId::yololite, World::secure);
    task.model = task.model.scaled(8); // keep the demo quick

    SecureTask secure;
    secure.program = runner.compile(task);
    secure.expected_measurement = CodeVerifier::measure(secure.program);
    secure.topology = NocTopology{1, 1};
    secure.proposed_cores = {0};

    std::vector<std::uint8_t> model_bytes(4096);
    for (std::size_t i = 0; i < model_bytes.size(); ++i)
        model_bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
    AesBlock iv{};
    iv[15] = 1;
    Digest mac{};
    secure.encrypted_model =
        soc.monitor().verifier().encryptModel(model_bytes, iv, mac);
    secure.model_mac = mac;
    secure.model_iv = iv;

    // 3. Submit + launch. Everything the driver handed over is
    //    validated inside the monitor; on success the core is in the
    //    secure world with guarder windows installed.
    const std::uint64_t id = soc.monitor().submit(secure);
    std::printf("submitted secure task %llu\n",
                static_cast<unsigned long long>(id));

    LaunchResult launch = soc.monitor().launchNext();
    if (!launch.ok()) {
        std::printf("launch rejected: %s\n", launch.reason().c_str());
        return 1;
    }
    std::printf("launched on core %u; model decrypted to secure PA "
                "0x%llx\n",
                launch.cores[0],
                static_cast<unsigned long long>(launch.model_paddr));

    // 4. Provision data windows for the program's buffers and run
    //    the monitor-wrapped loadable program.
    RunOptions opts;
    opts.core = launch.cores[0];
    RunResult run = runner.run(task, opts);
    if (!run.ok()) {
        std::printf("execution failed: %s\n", run.error().c_str());
        return 1;
    }
    std::printf("inference done: %llu cycles, %.1f%% FLOPS "
                "utilization, %llu guarder checks, 0x%llx DMA bytes\n",
                static_cast<unsigned long long>(run.cycles),
                run.utilization(256) * 100.0,
                static_cast<unsigned long long>(run.check_requests),
                static_cast<unsigned long long>(run.dma_bytes));

    // Release the secure context; the monitor scrubs the scratchpad.
    soc.monitor().finish(launch.task_id);
    std::printf("task finished; core back in the %s world\n",
                worldName(soc.npu().core(0).idState()));
    return 0;
}
