/**
 * @file
 * Attack gallery: runs every attack in the library against the
 * unprotected baseline and against sNPU, printing what leaked and
 * what was blocked. Demonstrates all three of the paper's attack
 * surfaces:
 *
 *   1. a compromised NPU reaching CPU-side secure memory,
 *   2. internal attacks between NPU tasks (scratchpad, NoC),
 *   3. CPU-side software attacking NPU tasks (privileged
 *      instructions, tampered code, malicious topology).
 *
 * Build & run: ./build/examples/attack_gallery
 */

#include <cstdio>

#include "core/attacks.hh"
#include "core/soc.hh"
#include "tee/secure_boot.hh"

using namespace snpu;

namespace
{

void
runSuite(const char *label, SystemKind kind)
{
    std::printf("=== %s ===\n", label);
    Soc soc(makeSystem(kind));
    for (const AttackResult &res : runAllAttacks(soc)) {
        std::printf("  %-28s %-8s %s\n", res.name.c_str(),
                    res.blocked ? "BLOCKED" : "LEAKED",
                    res.detail.c_str());
        if (!res.blocked && !res.leaked.empty()) {
            std::printf("    recovered: \"");
            for (std::uint8_t b : res.leaked) {
                std::printf("%c", b >= 32 && b < 127
                                      ? static_cast<char>(b)
                                      : '.');
            }
            std::printf("\"\n");
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    runSuite("Normal NPU (no protection)", SystemKind::normal_npu);
    runSuite("sNPU (Guarder + Isolator + Monitor)", SystemKind::snpu);

    // Bonus: the measured boot chain that roots the whole design.
    std::printf("=== secure boot ===\n");
    BootChain chain;
    chain.addStage("rom-loader", {0x13, 0x37});
    chain.addStage("trusted-firmware", {0xca, 0xfe});
    chain.addStage("teeos+npu-monitor", {0xf0, 0x0d});
    chain.addStage("normal-world", {0xaa});
    BootReport clean = chain.boot();
    std::printf("  clean chain: %s (%zu stages verified)\n",
                clean.ok ? "boots" : "halts", clean.verified.size());
    chain.corruptStage("teeos+npu-monitor", 0);
    BootReport tampered = chain.boot();
    std::printf("  tampered monitor: %s at stage '%s'\n",
                tampered.ok ? "boots (BAD)" : "halts",
                tampered.failed_stage.c_str());
    return 0;
}
