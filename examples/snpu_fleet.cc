/**
 * @file
 * snpu_fleet — command-line driver for fault-tolerant multi-SoC
 * fleet serving. Spins up N independent SoC fault domains, homes one
 * bursty tenant on each, arms the SoC-scoped fault sites at a chosen
 * kill rate, and reports per-SoC fates plus the fleet-wide
 * availability / migration / tail-latency picture. Fully
 * deterministic for a fixed seed.
 *
 * Usage:
 *   snpu_fleet [key=value ...]
 *
 * Keys (defaults in parentheses):
 *   socs=<n>                          (8)
 *   cores=<tiles per SoC>             (2)
 *   requests=<per tenant>             (8)
 *   load=<fraction of ideal capacity> (0.4)
 *   kill=<per-heartbeat crash odds>   (0.002)
 *     hangs ride at kill/4 and cordons at kill/8.
 *   mfail=<migration handshake failure odds> (0.08)
 *   failover=0|1                      (1)
 *   decode=0|1  every 4th+1 tenant generates tokens (1)
 *   secure=0|1  every 4th tenant secure (1)
 *   attest=0|1  measured-boot attestation at admission, plus a
 *         re-attestation of the target SoC before each migration (0)
 *   scale=<divisor for model dims>    (256)
 *   seed=<rng seed>                   (1)
 *   stats=0|1  dump the fleet stat group (0)
 *   stats_json=<file>  JSON dump of the fleet group (off)
 *   soc_stats=0|1  capture each SoC's stat tree (0)
 *
 * Examples:
 *   snpu_fleet socs=16 kill=0.003
 *   snpu_fleet socs=8 kill=0.004 failover=0   # the collapse baseline
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/systems.hh"
#include "fleet/fleet_controller.hh"
#include "serve/arrivals.hh"
#include "serve/server.hh"
#include "sim/config.hh"
#include "sim/hashing.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workload/model_zoo.hh"

using namespace snpu;

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        try {
            cfg.parseArg(argv[i]);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\nsee the header comment for "
                                 "usage\n",
                         e.what());
            return 2;
        }
    }

    const auto socs =
        static_cast<std::uint32_t>(cfg.getInt("socs", 8));
    const auto ncores =
        static_cast<std::uint32_t>(cfg.getInt("cores", 2));
    const auto requests =
        static_cast<std::uint32_t>(cfg.getInt("requests", 8));
    const double load = cfg.getDouble("load", 0.4);
    const double kill = cfg.getDouble("kill", 0.002);
    const double mfail = cfg.getDouble("mfail", 0.08);
    const bool failover = cfg.getBool("failover", true);
    const bool decode = cfg.getBool("decode", true);
    const bool secure = cfg.getBool("secure", true);
    const bool attest = cfg.getBool("attest", false);
    const auto scale =
        static_cast<std::uint32_t>(cfg.getInt("scale", 256));
    const auto seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    if (socs == 0) {
        std::fprintf(stderr, "socs= must be positive\n");
        return 2;
    }

    // Unloaded service time of the shared tenant model, the
    // load-calibration unit.
    NpuTask probe = NpuTask::fromModel(ModelId::mobilenet);
    probe.model = probe.model.scaled(scale);
    const double service = SnpuServer::profiledServiceCycles(
        makeSystem(SystemKind::snpu), probe);

    // One bursty tenant per SoC; lower index = higher shed
    // priority.
    const double gap = meanGapForLoad(load, 1, ncores, service);
    std::vector<FleetTenantSpec> tenants(socs);
    Tick last_arrival = 0;
    for (std::uint32_t t = 0; t < socs; ++t) {
        FleetTenantSpec &ft = tenants[t];
        char name[16];
        std::snprintf(name, sizeof(name), "t%u", t);
        ft.spec.name = name;
        ft.spec.task = NpuTask::fromModel(
            ModelId::mobilenet, secure && t % 4 == 0
                                    ? World::secure
                                    : World::normal);
        ft.spec.task.model = ft.spec.task.model.scaled(scale);
        if (decode && t % 4 == 1) {
            ft.spec.decode_tokens = 8;
            ft.spec.decoder = makeDecoder(DecoderId::tinygpt);
        }
        Rng rng(hashMix(seed, std::uint64_t(t)));
        ft.spec.arrivals =
            burstyArrivals(rng, gap, 4.0, 3.0, requests);
        ft.home = t;
        ft.priority = static_cast<std::int32_t>(socs - t);
        if (!ft.spec.arrivals.empty())
            last_arrival =
                std::max(last_arrival, ft.spec.arrivals.back());
    }

    FleetConfig fc;
    fc.num_socs = socs;
    fc.soc = makeSystem(SystemKind::snpu);
    fc.server.policy = SchedPolicy::id_based;
    fc.server.num_cores = ncores;
    fc.server.latency_hist_max = 64.0 * service;
    fc.server.latency_hist_buckets = 2048;
    fc.server.max_retries = 2;
    fc.server.retry_jitter = true;
    fc.server.attestation = attest;
    fc.heartbeat_interval =
        std::max<Tick>(1, static_cast<Tick>(service / 8.0));
    fc.horizon = last_arrival + static_cast<Tick>(2.0 * service);
    fc.fault_injection = kill > 0.0 || mfail > 0.0;
    fc.fault_plan.seed = hashMix(seed, std::uint64_t{0xf1ee7});
    const auto arm = [&fc](FaultSite site, double p) {
        FaultSpec spec;
        spec.site = site;
        spec.trigger = FaultTrigger::probability;
        spec.probability = p;
        spec.max_fires = 0;
        fc.fault_plan.faults.push_back(spec);
    };
    arm(FaultSite::soc_crash, kill);
    arm(FaultSite::soc_hang, kill / 4.0);
    arm(FaultSite::soc_degrade, kill / 8.0);
    arm(FaultSite::fleet_migration, mfail);
    fc.failover = failover;
    fc.migration_backoff =
        std::max<Tick>(1, static_cast<Tick>(service / 16.0));
    fc.resettle_cycles =
        std::max<Tick>(1, static_cast<Tick>(service / 64.0));
    fc.breaker_cooldown = static_cast<Tick>(2.0 * service);
    fc.latency_hist_max = 64.0 * service;
    fc.latency_hist_buckets = 2048;
    fc.capture_soc_stats = cfg.getBool("soc_stats", false);

    std::printf("fleet: %u SoCs x %u tiles, load=%.2f, "
                "kill=%.4f/heartbeat, mfail=%.2f, failover=%s, "
                "%u req/tenant, seed=%llu\n",
                socs, ncores, load, kill, mfail,
                failover ? "on" : "off", requests,
                static_cast<unsigned long long>(seed));

    FleetController fleet(fc);
    FleetResult res = fleet.run(tenants);
    if (!res.ok()) {
        std::fprintf(stderr, "fleet run failed: %s\n",
                     res.error().c_str());
        return 1;
    }

    std::printf("\n%-4s %-8s %10s %10s %6s %5s %5s %5s\n", "soc",
                "fate", "fault", "detected", "done", "start", "in",
                "out");
    for (const SocReport &soc : res.socs) {
        const char *fate = soc.crashed    ? "crashed"
                           : soc.hung     ? "hung"
                           : soc.degraded ? "degraded"
                                          : "ok";
        std::printf("%-4u %-8s %10llu %10llu %6llu %5u %5u %5u\n",
                    soc.soc, fate,
                    static_cast<unsigned long long>(soc.fault_tick),
                    static_cast<unsigned long long>(
                        soc.detected_tick),
                    static_cast<unsigned long long>(soc.completed),
                    soc.tenants_start, soc.migrated_in,
                    soc.migrated_out);
    }

    std::printf(
        "\navailability %.4f (%llu/%llu), failed %llu, rejected "
        "%llu, shed %llu\n"
        "evictions %u, migrations %u (failures %u), breaker "
        "trips/probes/readmits %u/%u/%u\n"
        "re-prefills %llu, lost tokens %llu, migration cycles "
        "%llu, re-attests %u\n"
        "latency p50/p95/p99 %llu/%llu/%llu, ttft p50/p99 "
        "%llu/%llu, makespan %llu\n",
        res.availability,
        static_cast<unsigned long long>(res.completed),
        static_cast<unsigned long long>(res.offered),
        static_cast<unsigned long long>(res.failed),
        static_cast<unsigned long long>(res.rejected),
        static_cast<unsigned long long>(res.shed), res.evictions,
        res.migrations, res.migration_failures, res.breaker_trips,
        res.breaker_probes, res.breaker_readmissions,
        static_cast<unsigned long long>(res.re_prefills),
        static_cast<unsigned long long>(res.lost_tokens),
        static_cast<unsigned long long>(res.migration_cycles),
        res.re_attests,
        static_cast<unsigned long long>(res.p50),
        static_cast<unsigned long long>(res.p95),
        static_cast<unsigned long long>(res.p99),
        static_cast<unsigned long long>(res.ttft_p50),
        static_cast<unsigned long long>(res.ttft_p99),
        static_cast<unsigned long long>(res.makespan));

    if (cfg.getBool("stats", false)) {
        std::ostringstream os;
        fleet.fleetStats().group.dump(os);
        std::fputs(os.str().c_str(), stdout);
    }
    const std::string stats_json = cfg.getString("stats_json", "");
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json.c_str());
            return 1;
        }
        fleet.registry().dumpJson(os);
        std::printf("stats: %s\n", stats_json.c_str());
    }
    return 0;
}
