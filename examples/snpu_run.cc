/**
 * @file
 * snpu_run — command-line driver for arbitrary configurations.
 *
 * Usage:
 *   snpu_run [key=value ...]
 *
 * Keys (defaults in parentheses):
 *   model=googlenet|alexnet|yololite|mobilenet|resnet|bert (resnet)
 *   system=normal|trustzone|snpu            (snpu)
 *   protection=<backend name>               (system default)
 *     any registered backend: passthrough|iommu|guarder|crypto
 *   world=normal|secure                     (normal)
 *   iotlb=<entries>                         (32, trustzone only)
 *   walk_cache=0|1                          (0)
 *   dma_channels=<n>                        (16)
 *   flush=none|tile|layer|layer5            (none)
 *   isolation=none|partition|id             (system default)
 *   partition_frac=<0..1>                   (0.5)
 *   encryption=0|1                          (0)
 *   scale=<divisor for M dims>              (1)
 *   cores=<n>  pipeline across n tiles      (1)
 *   noc=software|unauthorized|peephole      (peephole)
 *   stats=0|1  dump the full stat group     (0)
 *   stats_json=<file>  JSON stat dump       (off)
 *   trace_file=<file>  record a trace       (off)
 *   trace=<cats>  comma list: instr,dma,sec,noc,sched,guarder,
 *         spad,monitor,fault,serve,all      (instr,sec)
 *
 * Examples:
 *   snpu_run model=bert system=trustzone iotlb=4
 *   snpu_run model=resnet cores=4 noc=software
 *   snpu_run model=alexnet isolation=partition partition_frac=0.25
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/scheduler.hh"
#include "core/systems.hh"
#include "core/task_runner.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

#include <memory>

using namespace snpu;

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        try {
            cfg.parseArg(argv[i]);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\nsee the header comment for "
                                 "usage\n",
                         e.what());
            return 2;
        }
    }

    // System selection.
    const std::string system_name = cfg.getString("system", "snpu");
    SystemKind kind;
    if (system_name == "normal")
        kind = SystemKind::normal_npu;
    else if (system_name == "trustzone")
        kind = SystemKind::trustzone_npu;
    else if (system_name == "snpu")
        kind = SystemKind::snpu;
    else {
        std::fprintf(stderr, "unknown system '%s'\n",
                     system_name.c_str());
        return 2;
    }

    SocParams params = makeSystem(kind);

    // Protection backend override, validated against the registry.
    // The access_control= alias completed its deprecation cycle
    // (DESIGN.md §3f): reject it with the migration hint instead of
    // silently ignoring a key that used to select the backend.
    if (!cfg.getString("access_control", "").empty()) {
        std::fprintf(stderr, "snpu_run: access_control= was removed; "
                             "use protection=\n");
        return 2;
    }
    std::string protection = cfg.getString("protection", "");
    if (!protection.empty()) {
        ProtectionRegistry &reg = ProtectionRegistry::global();
        if (!reg.known(protection)) {
            std::fprintf(stderr,
                         "unknown protection backend '%s' "
                         "(registered: %s)\n",
                         protection.c_str(),
                         reg.namesJoined().c_str());
            return 2;
        }
        params.protection = protection;
    }
    if (kind == SystemKind::snpu && params.protection != "guarder") {
        std::fprintf(stderr, "the snpu system requires the guarder "
                             "backend; pick system=normal or "
                             "system=trustzone with protection=%s\n",
                     params.protection.c_str());
        return 2;
    }

    params.iotlb_entries = static_cast<std::uint32_t>(
        cfg.getInt("iotlb", params.iotlb_entries));
    params.iommu_walk_cache = cfg.getBool("walk_cache", false);
    params.dma_channels = static_cast<std::uint32_t>(
        cfg.getInt("dma_channels", params.dma_channels));
    params.memory_encryption = cfg.getBool("encryption", false);
    const std::string isolation = cfg.getString("isolation", "");
    if (isolation == "none")
        params.spad_isolation = IsolationMode::none;
    else if (isolation == "partition")
        params.spad_isolation = IsolationMode::partition;
    else if (isolation == "id")
        params.spad_isolation = IsolationMode::id_based;
    else if (!isolation.empty()) {
        std::fprintf(stderr, "unknown isolation '%s'\n",
                     isolation.c_str());
        return 2;
    }
    params.partition_secure_frac =
        cfg.getDouble("partition_frac", params.partition_secure_frac);

    FlushGranularity flush = FlushGranularity::none;
    const std::string flush_name = cfg.getString("flush", "none");
    if (flush_name == "tile")
        flush = FlushGranularity::tile;
    else if (flush_name == "layer")
        flush = FlushGranularity::layer;
    else if (flush_name == "layer5")
        flush = FlushGranularity::layer5;
    else if (flush_name != "none") {
        std::fprintf(stderr, "unknown flush '%s'\n",
                     flush_name.c_str());
        return 2;
    }

    NocMode noc = NocMode::peephole;
    const std::string noc_name = cfg.getString("noc", "peephole");
    if (noc_name == "software")
        noc = NocMode::software;
    else if (noc_name == "unauthorized")
        noc = NocMode::unauthorized;
    else if (noc_name != "peephole") {
        std::fprintf(stderr, "unknown noc '%s'\n", noc_name.c_str());
        return 2;
    }

    // Task selection.
    NpuTask task = NpuTask::fromModel(
        modelByName(cfg.getString("model", "resnet")),
        cfg.getString("world", "normal") == "secure" ? World::secure
                                                     : World::normal);
    const auto scale =
        static_cast<std::uint32_t>(cfg.getInt("scale", 1));
    if (scale > 1)
        task.model = task.model.scaled(scale);

    Soc soc(params);
    TaskRunner runner(soc);

    // Optional execution trace.
    std::unique_ptr<FileTraceSink> trace_sink;
    const std::string trace_file = cfg.getString("trace_file", "");
    if (!trace_file.empty()) {
        std::uint32_t mask = 0;
        std::string cats = cfg.getString("trace", "instr,sec");
        cats += ',';
        std::string token;
        for (char ch : cats) {
            if (ch != ',') {
                token.push_back(ch);
                continue;
            }
            if (token == "instr")
                mask |= traceMask(TraceCategory::instr);
            else if (token == "dma")
                mask |= traceMask(TraceCategory::dma);
            else if (token == "sec")
                mask |= traceMask(TraceCategory::security);
            else if (token == "noc")
                mask |= traceMask(TraceCategory::noc);
            else if (token == "sched")
                mask |= traceMask(TraceCategory::sched);
            else if (token == "guarder")
                mask |= traceMask(TraceCategory::guarder);
            else if (token == "spad")
                mask |= traceMask(TraceCategory::spad);
            else if (token == "monitor")
                mask |= traceMask(TraceCategory::monitor);
            else if (token == "fault")
                mask |= traceMask(TraceCategory::fault);
            else if (token == "serve")
                mask |= traceMask(TraceCategory::serve);
            else if (token == "all")
                mask = ~0u;
            else if (!token.empty()) {
                std::fprintf(stderr, "unknown trace category '%s'\n",
                             token.c_str());
                return 2;
            }
            token.clear();
        }
        trace_sink =
            std::make_unique<FileTraceSink>(trace_file, mask);
        soc.attachTrace(trace_sink.get());
    }

    std::printf("%s\n", soc.params().describe().c_str());
    std::printf("model=%s world=%s macs=%llu weights=%llu B\n",
                task.name.c_str(), worldName(task.world),
                static_cast<unsigned long long>(task.model.macs()),
                static_cast<unsigned long long>(
                    task.model.weightBytes()));

    const auto cores =
        static_cast<std::uint32_t>(cfg.getInt("cores", 1));
    if (cores > 1) {
        std::vector<std::uint32_t> ids;
        for (std::uint32_t i = 0; i < cores; ++i)
            ids.push_back(i);
        PipelineResult res = runner.runPipeline(
            task, ids, noc,
            static_cast<std::uint32_t>(task.model.layers.size()));
        if (!res.ok()) {
            std::fprintf(stderr, "pipeline failed: %s\n",
                         res.error().c_str());
            return 1;
        }
        std::printf("pipeline(%u cores, %s): %llu cycles, %llu NoC "
                    "bytes, %llu transfers\n",
                    cores, nocModeName(noc),
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.noc_bytes),
                    static_cast<unsigned long long>(res.transfers));
    } else {
        RunOptions opts;
        opts.flush = flush;
        RunResult res = runner.run(task, opts);
        if (!res.ok()) {
            std::fprintf(stderr, "run failed: %s\n",
                         res.error().c_str());
            return 1;
        }
        std::printf("cycles=%llu (%.3f ms at 1 GHz)  "
                    "utilization=%.1f%%  dma=%llu B  checks=%llu  "
                    "flush=%llu cyc\n",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<double>(res.cycles) / 1e6,
                    res.utilization(256) * 100.0,
                    static_cast<unsigned long long>(res.dma_bytes),
                    static_cast<unsigned long long>(
                        res.check_requests),
                    static_cast<unsigned long long>(
                        res.flush_cycles));
    }

    if (cfg.getBool("stats", false))
        soc.stats().dump(std::cout);
    const std::string stats_json = cfg.getString("stats_json", "");
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json.c_str());
            return 1;
        }
        soc.registry().dumpJson(os);
        std::printf("stats: %s\n", stats_json.c_str());
    }
    if (trace_sink) {
        std::printf("trace: %llu records -> %s\n",
                    static_cast<unsigned long long>(
                        trace_sink->lines()),
                    trace_file.c_str());
    }
    return 0;
}
