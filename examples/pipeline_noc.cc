/**
 * @file
 * Multi-core pipeline example: one inference mapped layer-by-layer
 * across four NPU tiles, with inter-layer activations handed off
 * three different ways:
 *
 *   - software NoC : store to shared memory, reload on the peer
 *                    (the memory-wall baseline),
 *   - unauthorized : direct mesh NoC with no checks (fast, insecure),
 *   - peephole     : direct mesh NoC with sNPU's authentication.
 *
 * Also demonstrates route integrity: the monitor rejects a malicious
 * 1x4 core layout offered against a 2x2 request.
 *
 * Build & run: ./build/examples/pipeline_noc
 */

#include <cstdio>

#include "core/systems.hh"
#include "core/task_runner.hh"
#include "tee/monitor/npu_monitor.hh"

using namespace snpu;

int
main()
{
    NpuTask task = NpuTask::fromModel(ModelId::resnet, World::secure);
    task.model = task.model.scaled(4);
    const auto stages =
        static_cast<std::uint32_t>(task.model.layers.size());

    std::printf("resnet mapped layer-per-core across 4 tiles "
                "(%u stages)\n\n",
                stages);
    std::printf("%-14s %12s %12s %10s\n", "transport", "cycles",
                "NoC bytes", "transfers");

    Tick unauth_cycles = 0;
    for (NocMode mode : {NocMode::software, NocMode::unauthorized,
                         NocMode::peephole}) {
        auto soc = buildSoc(SystemKind::snpu);
        TaskRunner runner(*soc);
        PipelineResult res =
            runner.runPipeline(task, {0, 1, 5, 6}, mode, stages);
        if (!res.ok()) {
            std::printf("%s failed: %s\n", nocModeName(mode),
                        res.error().c_str());
            return 1;
        }
        if (mode == NocMode::unauthorized)
            unauth_cycles = res.cycles;
        std::printf("%-14s %12llu %12llu %10llu\n",
                    nocModeName(mode),
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.noc_bytes),
                    static_cast<unsigned long long>(res.transfers));
    }
    std::printf("\n(the peephole should match the unauthorized NoC "
                "within a handshake: %llu cycles)\n\n",
                static_cast<unsigned long long>(unauth_cycles));

    // Route integrity: the 2x2 block {0,1,5,6} is what we used
    // above; a compromised scheduler offering the 1x4 strip
    // {0,1,2,3} is caught before anything loads.
    Soc soc(makeSystem(SystemKind::snpu));
    SecureTask secure;
    Instr nop;
    nop.op = Opcode::fence;
    secure.program.code.push_back(nop);
    secure.program.spad_rows_used = 16;
    secure.expected_measurement = CodeVerifier::measure(secure.program);
    secure.topology = NocTopology{2, 2};

    secure.proposed_cores = {0, 1, 5, 6};
    soc.monitor().submit(secure);
    LaunchResult good = soc.monitor().launchNext();
    std::printf("route check, 2x2 block {0,1,5,6}: %s\n",
                good.ok() ? "accepted" : good.reason().c_str());
    if (good.ok())
        soc.monitor().finish(good.task_id);

    secure.proposed_cores = {0, 1, 2, 3};
    soc.monitor().submit(secure);
    LaunchResult bad = soc.monitor().launchNext();
    std::printf("route check, 1x4 strip {0,1,2,3}: %s\n",
                bad.ok() ? "accepted (BAD)" : bad.reason().c_str());
    return bad.ok() ? 1 : 0;
}
