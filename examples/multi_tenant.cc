/**
 * @file
 * Multi-tenant example: a confidential (secure-world) model and an
 * untrusted (normal-world) model share one NPU core, the motivating
 * scenario of the paper — e.g. face authentication running next to a
 * third-party photo filter on a phone.
 *
 * The example runs the same workload mix under all four isolation
 * policies and prints what each costs, then proves the isolation by
 * attempting a LeftoverLocals read after the secure task finishes.
 *
 * Build & run: ./build/examples/multi_tenant
 */

#include <cstdio>

#include "core/attacks.hh"
#include "core/scheduler.hh"
#include "core/systems.hh"

using namespace snpu;

int
main()
{
    SchedScenario scenario;
    scenario.background =
        NpuTask::fromModel(ModelId::mobilenet, World::normal, 0);
    scenario.background.model = scenario.background.model.scaled(8);
    scenario.periodic =
        NpuTask::fromModel(ModelId::yololite, World::secure, 10);
    scenario.periodic.model = scenario.periodic.model.scaled(8);
    scenario.period = 300000;
    scenario.instances = 5;

    std::printf("two tenants on one core: secure %s (periodic) + "
                "normal %s (background)\n\n",
                scenario.periodic.name.c_str(),
                scenario.background.name.c_str());

    std::printf("%-24s %12s %14s %16s %12s\n", "policy", "makespan",
                "bg completion", "worst latency", "flush cyc");
    for (SchedPolicy policy :
         {SchedPolicy::flush_fine, SchedPolicy::flush_coarse,
          SchedPolicy::partition, SchedPolicy::id_based}) {
        auto soc = buildSoc(SystemKind::snpu);
        TimeSharedScheduler sched(*soc, policy, 8);
        SchedResult res = sched.run(scenario);
        if (!res.ok()) {
            std::printf("%s failed: %s\n", schedPolicyName(policy),
                        res.error().c_str());
            return 1;
        }
        std::printf("%-24s %12llu %14llu %16llu %12llu\n",
                    schedPolicyName(policy),
                    static_cast<unsigned long long>(res.makespan),
                    static_cast<unsigned long long>(
                        res.background_completion),
                    static_cast<unsigned long long>(
                        res.worst_latency),
                    static_cast<unsigned long long>(
                        res.flush_overhead));
    }

    // The proof that sharing is safe: after the secure task ran, a
    // normal-world tenant tries to read the scratchpad rows it left
    // behind — the LeftoverLocals attack.
    std::printf("\nLeftoverLocals probe after secure execution:\n");
    const std::vector<std::uint8_t> secret = {'f', 'a', 'c', 'e',
                                              '-', 'i', 'd'};
    {
        Soc vulnerable(makeSystem(SystemKind::normal_npu));
        AttackResult res = leftoverLocalsAttack(vulnerable, secret);
        std::printf("  normal NPU : %s (%s)\n",
                    res.blocked ? "blocked" : "SECRET LEAKED",
                    res.detail.c_str());
    }
    {
        Soc snpu(makeSystem(SystemKind::snpu));
        AttackResult res = leftoverLocalsAttack(snpu, secret);
        std::printf("  sNPU       : %s (%s)\n",
                    res.blocked ? "blocked" : "SECRET LEAKED",
                    res.detail.c_str());
    }
    return 0;
}
